//! # sqlpp-durability — crash-safe persistence for the catalog
//!
//! Every byte of catalog state used to die with the process. This crate
//! adds the classic storage-engine trio (DESIGN.md §5.13):
//!
//! * an **append-only write-ahead log** (`wal.log`) of checksummed,
//!   ion_lite-framed records, one per committed catalog mutation, each
//!   stamped with a monotonic log sequence number (LSN);
//! * **checkpoint snapshots** (`snap-<lsn>.snap`) of the full catalog —
//!   values, schema attachments, schema epoch — written to a temp file,
//!   fsynced, and atomically renamed, after which the WAL is truncated;
//! * **recovery**: load the newest valid snapshot, replay the WAL tail
//!   above its LSN, tolerate a torn final record (the residue of a
//!   crash mid-append) by stopping at the last checksum-valid frame,
//!   and report mid-log damage as structured corruption — never a
//!   panic, never a silent half-state.
//!
//! The fsync discipline is a dial ([`SyncMode`]): `Always` syncs the
//! log on every commit (every acknowledged commit survives a crash),
//! `OnCheckpoint` syncs only snapshots (a crash may lose the tail since
//! the last checkpoint, but never corrupts), `Never` leaves all
//! flushing to the OS (fastest; survives process death via the page
//! cache, not power loss).
//!
//! Crash behavior is *tested, not argued*: the engine threads
//! [`FaultInjector`] hooks through five sites here (`wal-append`,
//! `wal-fsync`, `snapshot-write`, `snapshot-rename`, `recovery-read`),
//! and the workspace crash harness kills a seeded DML workload at every
//! one of them, recovers, and asserts statement-atomic state.

#![warn(missing_docs)]

mod crc32;
pub mod record;
pub mod snapshot;
pub mod wal;

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

pub use crc32::crc32;
pub use record::{WalOp, WalRecord};
pub use snapshot::{read_snapshot, write_snapshot, CatalogImage, Snapshot};
pub use wal::wal_record_ends;

use sqlpp_eval::{FaultInjector, FaultSite};
use sqlpp_schema::SqlppType;
use sqlpp_value::Value;

/// The WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// When the log is forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// `fsync` after every appended record: an acknowledged commit is on
    /// disk before the catalog publishes it.
    Always,
    /// `fsync` only when a checkpoint snapshot is written; WAL appends
    /// ride the OS page cache in between.
    OnCheckpoint,
    /// Never call `fsync`; all flushing is the OS's business.
    Never,
}

impl SyncMode {
    /// Stable lowercase name (status displays, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            SyncMode::Always => "always",
            SyncMode::OnCheckpoint => "on-checkpoint",
            SyncMode::Never => "never",
        }
    }
}

impl fmt::Display for SyncMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How (and where) a catalog persists.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `snap-*.snap`. Created on open.
    /// One engine per directory — concurrent opens are not coordinated.
    pub dir: PathBuf,
    /// The fsync discipline.
    pub sync: SyncMode,
    /// Fault-injection hook for the storage sites (crash testing only;
    /// `None` in production).
    pub fault: Option<FaultInjector>,
}

impl DurabilityConfig {
    /// Durability in `dir` with the safe default (`SyncMode::Always`).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            sync: SyncMode::Always,
            fault: None,
        }
    }

    /// Sets the fsync discipline.
    pub fn with_sync(mut self, sync: SyncMode) -> Self {
        self.sync = sync;
        self
    }

    /// Attaches a fault-injection hook.
    pub fn with_fault(mut self, fault: FaultInjector) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// Errors from the persistence layer. Everything is structured and
/// recoverable — a failed append leaves the in-memory catalog and the
/// valid log prefix untouched; corruption names the file and offset.
#[derive(Debug)]
pub enum DurabilityError {
    /// An OS-level file operation failed.
    Io {
        /// What was being attempted (`"append"`, `"fsync"`, `"rename"`…).
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The OS error text.
        message: String,
    },
    /// On-disk bytes that a torn write cannot explain: mid-log checksum
    /// failures, undecodable checksum-valid frames, LSNs out of order,
    /// unreadable snapshots.
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// Byte offset of the damage (0 for whole-file defects).
        offset: u64,
        /// What was wrong.
        message: String,
    },
    /// An injected fault fired at a storage site (crash testing).
    Injected(String),
    /// A previous append failed in a way that could not be rolled back;
    /// the log refuses further writes until reopened (recovery will
    /// stop at the last valid frame).
    Poisoned,
}

impl DurabilityError {
    fn io(op: &'static str, path: &Path, e: &std::io::Error) -> Self {
        DurabilityError::Io {
            op,
            path: path.to_path_buf(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { op, path, message } => {
                write!(
                    f,
                    "durability I/O error: {op} {}: {message}",
                    path.display()
                )
            }
            DurabilityError::Corrupt {
                path,
                offset,
                message,
            } => write!(
                f,
                "durability corruption in {} at offset {offset}: {message}",
                path.display()
            ),
            DurabilityError::Injected(m) => write!(f, "durability fault injected: {m}"),
            DurabilityError::Poisoned => write!(
                f,
                "write-ahead log poisoned by an unrecoverable append failure; reopen to recover"
            ),
        }
    }
}

impl std::error::Error for DurabilityError {}

/// What recovery reconstructed when the store was opened.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// The catalog contents to install.
    pub image: CatalogImage,
    /// LSN of the snapshot recovery started from, if one existed.
    pub snapshot_lsn: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub replayed: u64,
    /// The highest LSN seen (0 for a fresh directory).
    pub last_lsn: u64,
    /// Description of the torn tail that was truncated away, if any.
    pub torn_tail: Option<String>,
}

/// Point-in-time counters for `.wal status` and the B18 bench.
#[derive(Debug, Clone)]
pub struct WalStatus {
    /// The durability directory.
    pub dir: PathBuf,
    /// The fsync discipline.
    pub sync: SyncMode,
    /// Highest LSN assigned so far (0 = nothing logged).
    pub last_lsn: u64,
    /// LSN of the newest checkpoint snapshot, if any.
    pub snapshot_lsn: Option<u64>,
    /// Records appended since the last checkpoint (what replay would
    /// cost right now).
    pub records_since_checkpoint: u64,
    /// Current WAL file length in bytes.
    pub wal_bytes: u64,
    /// Records appended over this store's lifetime.
    pub appends: u64,
    /// `fsync` calls made over this store's lifetime.
    pub syncs: u64,
    /// Checkpoints taken over this store's lifetime.
    pub checkpoints: u64,
    /// Records replayed when this store was opened.
    pub replayed: u64,
    /// Whether the log has refused writes after an unrecoverable
    /// append failure.
    pub poisoned: bool,
}

struct WalInner {
    file: File,
    /// Length of the valid log prefix — the rollback point if an
    /// append half-lands.
    len: u64,
    next_lsn: u64,
    snapshot_lsn: Option<u64>,
    records_since_checkpoint: u64,
    appends: u64,
    syncs: u64,
    checkpoints: u64,
    poisoned: bool,
}

/// An open durability directory: the WAL writer plus checkpoint and
/// status operations. One `DurableStore` serializes all log writes
/// internally; the engine additionally holds its catalog `dml_guard`
/// across append+publish so checkpoints capture statement boundaries.
pub struct DurableStore {
    dir: PathBuf,
    sync: SyncMode,
    fault: Option<FaultInjector>,
    replayed: u64,
    inner: Mutex<WalInner>,
}

impl fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("sync", &self.sync)
            .finish_non_exhaustive()
    }
}

impl DurableStore {
    /// Opens (or creates) a durability directory, running full recovery:
    /// orphaned temp files are deleted, the newest valid snapshot is
    /// loaded, the WAL tail above its LSN is replayed, and a torn final
    /// record is truncated away so subsequent appends extend a valid
    /// log. Returns the store plus everything recovery reconstructed.
    pub fn open(config: DurabilityConfig) -> Result<(DurableStore, Recovered), DurabilityError> {
        let dir = config.dir;
        std::fs::create_dir_all(&dir).map_err(|e| DurabilityError::io("create-dir", &dir, &e))?;

        // A crash between snapshot write and rename leaves `.tmp`
        // orphans; they are unreferenced by definition.
        for entry in list_dir(&dir)? {
            if entry.to_string_lossy().ends_with(".tmp") {
                let _ = std::fs::remove_file(&entry);
            }
        }

        // Newest valid snapshot wins; older ones only exist if a crash
        // interrupted the post-checkpoint prune.
        let mut snaps = snapshot_files(&dir)?;
        snaps.sort_by(|a, b| b.0.cmp(&a.0));
        let mut snapshot: Option<Snapshot> = None;
        let mut first_bad: Option<DurabilityError> = None;
        for (_lsn, path) in &snaps {
            fault_check(config.fault.as_ref(), FaultSite::RecoveryRead)?;
            match read_snapshot(path) {
                Ok(s) => {
                    snapshot = Some(s);
                    break;
                }
                Err(e) => {
                    if first_bad.is_none() {
                        first_bad = Some(e);
                    }
                }
            }
        }
        if snapshot.is_none() {
            if let Some(e) = first_bad {
                // Snapshots are written atomically, so an invalid one is
                // damage, not a crash artifact.
                return Err(e);
            }
        }
        let (mut image, snap_lsn) = match snapshot {
            Some(s) => (s.image, Some(s.lsn)),
            None => (CatalogImage::default(), None),
        };

        // Replay the WAL tail.
        let wal_path = dir.join(WAL_FILE);
        let min_lsn = snap_lsn.unwrap_or(0);
        let mut last_lsn = min_lsn;
        let mut replayed = 0u64;
        let mut torn_tail = None;
        let mut valid_len = 0u64;
        if wal_path.exists() {
            fault_check(config.fault.as_ref(), FaultSite::RecoveryRead)?;
            let data =
                std::fs::read(&wal_path).map_err(|e| DurabilityError::io("read", &wal_path, &e))?;
            let scan = wal::scan(&data, &wal_path, min_lsn)?;
            for (record, _) in &scan.records {
                apply(&mut image, &record.op);
                last_lsn = record.lsn;
                replayed += 1;
            }
            valid_len = scan.valid_len;
            torn_tail = scan.torn;
        }

        // Truncate the torn tail so appends extend a valid log, then
        // open for appending.
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| DurabilityError::io("open", &wal_path, &e))?;
        if torn_tail.is_some() {
            file.set_len(valid_len)
                .map_err(|e| DurabilityError::io("truncate", &wal_path, &e))?;
        }

        let recovered = Recovered {
            image: image.clone(),
            snapshot_lsn: snap_lsn,
            replayed,
            last_lsn,
            torn_tail,
        };
        let store = DurableStore {
            dir,
            sync: config.sync,
            fault: config.fault,
            replayed,
            inner: Mutex::new(WalInner {
                file,
                len: valid_len,
                next_lsn: last_lsn + 1,
                snapshot_lsn: snap_lsn,
                records_since_checkpoint: replayed,
                appends: 0,
                syncs: 0,
                checkpoints: 0,
                poisoned: false,
            }),
        };
        Ok((store, recovered))
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fsync discipline.
    pub fn sync_mode(&self) -> SyncMode {
        self.sync
    }

    /// Appends a full-value commit record; returns its LSN.
    pub fn append_commit(&self, name: &str, value: &Value) -> Result<u64, DurabilityError> {
        self.append_op(|lsn| WalRecord {
            lsn,
            op: WalOp::Commit {
                name: name.to_string(),
                value: value.clone(),
            },
        })
    }

    /// Appends a commit that also attaches a schema (one record — a
    /// CREATE TABLE is a single atomic log entry); returns its LSN.
    pub fn append_commit_with_schema(
        &self,
        name: &str,
        value: &Value,
        schema: &SqlppType,
    ) -> Result<u64, DurabilityError> {
        self.append_op(|lsn| WalRecord {
            lsn,
            op: WalOp::CommitWithSchema {
                name: name.to_string(),
                value: value.clone(),
                schema: schema.clone(),
            },
        })
    }

    /// Appends a schema attachment; returns its LSN.
    pub fn append_schema(&self, name: &str, schema: &SqlppType) -> Result<u64, DurabilityError> {
        self.append_op(|lsn| WalRecord {
            lsn,
            op: WalOp::SetSchema {
                name: name.to_string(),
                schema: schema.clone(),
            },
        })
    }

    /// Appends an unbind record; returns its LSN.
    pub fn append_remove(&self, name: &str) -> Result<u64, DurabilityError> {
        self.append_op(|lsn| WalRecord {
            lsn,
            op: WalOp::Remove {
                name: name.to_string(),
            },
        })
    }

    fn append_op(&self, build: impl FnOnce(u64) -> WalRecord) -> Result<u64, DurabilityError> {
        let mut w = self.lock();
        if w.poisoned {
            return Err(DurabilityError::Poisoned);
        }
        // The append site fires *before* any byte is written: an
        // injected fault here models a crash caught pre-write, so the
        // log is unchanged and the statement must not publish.
        self.fault(FaultSite::WalAppend)?;
        let lsn = w.next_lsn;
        let frame = wal::frame(&record::encode_record(&build(lsn)));
        let wal_path = self.dir.join(WAL_FILE);
        if let Err(e) = w.file.write_all(&frame) {
            // Part of the frame may have landed — exactly a torn tail.
            // Roll the file back to the last valid boundary; if even
            // that fails, poison the log (recovery tolerates the tail).
            if w.file.set_len(w.len).is_err() {
                w.poisoned = true;
            }
            return Err(DurabilityError::io("append", &wal_path, &e));
        }
        if self.sync == SyncMode::Always {
            // A sync failure means durability is *unknown*: the frame
            // is complete in the OS cache and may or may not reach
            // disk. The record keeps its LSN (later appends must not
            // reuse it), the statement fails un-published, and
            // recovery may legitimately resurrect it — the crash
            // harness accepts either side of the interrupted
            // statement.
            let synced = match self.fault(FaultSite::WalFsync) {
                Ok(()) => w
                    .file
                    .sync_data()
                    .map_err(|e| DurabilityError::io("fsync", &wal_path, &e)),
                Err(e) => Err(e),
            };
            w.len += frame.len() as u64;
            w.next_lsn += 1;
            w.records_since_checkpoint += 1;
            w.appends += 1;
            if let Err(e) = synced {
                return Err(e);
            }
            w.syncs += 1;
        } else {
            w.len += frame.len() as u64;
            w.next_lsn += 1;
            w.records_since_checkpoint += 1;
            w.appends += 1;
        }
        Ok(lsn)
    }

    /// Takes a checkpoint: writes `image` (plus the current last LSN) to
    /// a temp file, fsyncs, atomically renames it to
    /// `snap-<lsn>.snap`, truncates the WAL, and prunes older
    /// snapshots. The caller must pass an image consistent with every
    /// LSN appended so far — the engine does this by holding its
    /// catalog `dml_guard` across the capture and this call.
    pub fn checkpoint(&self, image: &CatalogImage) -> Result<u64, DurabilityError> {
        let mut w = self.lock();
        if w.poisoned {
            return Err(DurabilityError::Poisoned);
        }
        let lsn = w.next_lsn - 1;
        let final_path = self.dir.join(format!("snap-{lsn:020}.snap"));
        let tmp_path = self.dir.join(format!("snap-{lsn:020}.snap.tmp"));
        let snap = Snapshot {
            lsn,
            image: image.clone(),
        };
        let written = self
            .fault(FaultSite::SnapshotWrite)
            .and_then(|()| write_snapshot(&tmp_path, &snap, self.sync != SyncMode::Never));
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }
        let renamed = self.fault(FaultSite::SnapshotRename).and_then(|()| {
            std::fs::rename(&tmp_path, &final_path)
                .map_err(|e| DurabilityError::io("rename", &final_path, &e))
        });
        if let Err(e) = renamed {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }
        if self.sync != SyncMode::Never {
            // Make the rename itself durable.
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
            w.syncs += 1;
        }
        // The snapshot now covers every logged record: truncate the log.
        // A crash before this truncate is safe — replay skips records
        // at or below the snapshot LSN.
        let wal_path = self.dir.join(WAL_FILE);
        w.file
            .set_len(0)
            .map_err(|e| DurabilityError::io("truncate", &wal_path, &e))?;
        w.len = 0;
        w.records_since_checkpoint = 0;
        w.snapshot_lsn = Some(lsn);
        w.checkpoints += 1;
        // Prune superseded snapshots (best-effort; recovery prefers the
        // newest valid one regardless).
        for (old_lsn, path) in snapshot_files(&self.dir)? {
            if old_lsn < lsn {
                let _ = std::fs::remove_file(path);
            }
        }
        Ok(lsn)
    }

    /// Current counters.
    pub fn status(&self) -> WalStatus {
        let w = self.lock();
        WalStatus {
            dir: self.dir.clone(),
            sync: self.sync,
            last_lsn: w.next_lsn - 1,
            snapshot_lsn: w.snapshot_lsn,
            records_since_checkpoint: w.records_since_checkpoint,
            wal_bytes: w.len,
            appends: w.appends,
            syncs: w.syncs,
            checkpoints: w.checkpoints,
            replayed: self.replayed,
            poisoned: w.poisoned,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fault(&self, site: FaultSite) -> Result<(), DurabilityError> {
        fault_check(self.fault.as_ref(), site)
    }
}

fn fault_check(fault: Option<&FaultInjector>, site: FaultSite) -> Result<(), DurabilityError> {
    if let Some(inj) = fault {
        if let Some(e) = inj.check(site) {
            return Err(DurabilityError::Injected(e.to_string()));
        }
    }
    Ok(())
}

/// Applies one replayed record to a catalog image.
fn apply(image: &mut CatalogImage, op: &WalOp) {
    match op {
        WalOp::Commit { name, value } => {
            set_entry(&mut image.values, name, value.clone());
        }
        WalOp::CommitWithSchema {
            name,
            value,
            schema,
        } => {
            set_entry(&mut image.values, name, value.clone());
            set_entry(&mut image.schemas, name, schema.clone());
            image.schema_epoch += 1;
        }
        WalOp::SetSchema { name, schema } => {
            set_entry(&mut image.schemas, name, schema.clone());
            image.schema_epoch += 1;
        }
        WalOp::Remove { name } => {
            image.values.retain(|(n, _)| n != name);
            let had_schema = image.schemas.iter().any(|(n, _)| n == name);
            image.schemas.retain(|(n, _)| n != name);
            if had_schema {
                image.schema_epoch += 1;
            }
        }
    }
}

fn set_entry<T>(entries: &mut Vec<(String, T)>, name: &str, value: T) {
    match entries.iter_mut().find(|(n, _)| n == name) {
        Some((_, slot)) => *slot = value,
        None => entries.push((name.to_string(), value)),
    }
}

fn list_dir(dir: &Path) -> Result<Vec<PathBuf>, DurabilityError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| DurabilityError::io("read-dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| DurabilityError::io("read-dir", dir, &e))?;
        out.push(entry.path());
    }
    Ok(out)
}

/// `(lsn, path)` of every `snap-*.snap` file in the directory.
fn snapshot_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    for path in list_dir(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(lsn) = name
            .strip_prefix("snap-")
            .and_then(|rest| rest.strip_suffix(".snap"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((lsn, path));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::bag;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sqlpp-durability-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn log_then_reopen_restores_everything() {
        let dir = tmp_dir("roundtrip");
        {
            let (store, rec) = DurableStore::open(DurabilityConfig::new(&dir)).unwrap();
            assert_eq!(rec.last_lsn, 0);
            assert!(rec.image.values.is_empty());
            assert_eq!(store.append_commit("t", &bag![1i64]).unwrap(), 1);
            assert_eq!(store.append_commit("t", &bag![1i64, 2i64]).unwrap(), 2);
            assert_eq!(
                store
                    .append_schema("t", &SqlppType::Bag(Box::new(SqlppType::Int)))
                    .unwrap(),
                3
            );
        }
        let (store, rec) = DurableStore::open(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(rec.replayed, 3);
        assert_eq!(rec.last_lsn, 3);
        assert_eq!(rec.image.values, vec![("t".to_string(), bag![1i64, 2i64])]);
        assert_eq!(rec.image.schemas.len(), 1);
        assert_eq!(rec.image.schema_epoch, 1);
        // LSNs keep counting from where they stopped.
        assert_eq!(store.append_commit("u", &bag![]).unwrap(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_and_recovery_prefers_it() {
        let dir = tmp_dir("checkpoint");
        let (store, _) = DurableStore::open(DurabilityConfig::new(&dir)).unwrap();
        store.append_commit("t", &bag![1i64]).unwrap();
        store.append_commit("t", &bag![1i64, 2i64]).unwrap();
        let image = CatalogImage {
            values: vec![("t".into(), bag![1i64, 2i64])],
            schemas: vec![],
            schema_epoch: 0,
        };
        assert_eq!(store.checkpoint(&image).unwrap(), 2);
        let st = store.status();
        assert_eq!(st.snapshot_lsn, Some(2));
        assert_eq!(st.wal_bytes, 0);
        // Post-checkpoint commits land in the (now empty) log.
        store.append_commit("t", &bag![1i64, 2i64, 3i64]).unwrap();
        drop(store);
        let (_store, rec) = DurableStore::open(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(rec.snapshot_lsn, Some(2));
        assert_eq!(rec.replayed, 1);
        assert_eq!(
            rec.image.values,
            vec![("t".to_string(), bag![1i64, 2i64, 3i64])]
        );
        // Exactly one snapshot file and the wal remain.
        let names: Vec<String> = list_dir(&dir)
            .unwrap()
            .iter()
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        assert_eq!(names.len(), 2, "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        {
            let (store, _) = DurableStore::open(DurabilityConfig::new(&dir)).unwrap();
            store.append_commit("a", &bag![1i64]).unwrap();
            store.append_commit("b", &bag![2i64]).unwrap();
        }
        let wal = dir.join(WAL_FILE);
        let full = std::fs::read(&wal).unwrap();
        let ends = wal_record_ends(&wal).unwrap();
        // Chop mid-way through the second record.
        let cut = (ends[0] + ends[1]) / 2;
        std::fs::write(&wal, &full[..cut as usize]).unwrap();
        let (store, rec) = DurableStore::open(DurabilityConfig::new(&dir)).unwrap();
        assert!(rec.torn_tail.is_some());
        assert_eq!(rec.replayed, 1);
        assert_eq!(rec.image.values, vec![("a".to_string(), bag![1i64])]);
        // The torn bytes are gone; a new append produces a clean log.
        store.append_commit("c", &bag![3i64]).unwrap();
        drop(store);
        let (_s, rec2) = DurableStore::open(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(rec2.replayed, 2);
        assert!(rec2.torn_tail.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_a_structured_error() {
        let dir = tmp_dir("corrupt");
        {
            let (store, _) = DurableStore::open(DurabilityConfig::new(&dir)).unwrap();
            store.append_commit("a", &bag![1i64]).unwrap();
            store.append_commit("b", &bag![2i64]).unwrap();
        }
        let wal = dir.join(WAL_FILE);
        let mut data = std::fs::read(&wal).unwrap();
        let ends = wal_record_ends(&wal).unwrap();
        data[(ends[0] - 2) as usize] ^= 0x10; // flip inside record 1
        std::fs::write(&wal, &data).unwrap();
        match DurableStore::open(DurabilityConfig::new(&dir)) {
            Err(DurabilityError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected corruption, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_surface_and_do_not_advance_the_log() {
        let dir = tmp_dir("inject");
        let plan = std::sync::atomic::AtomicBool::new(true);
        let inj = FaultInjector::new(move |site| {
            (site == FaultSite::WalAppend && plan.swap(false, std::sync::atomic::Ordering::Relaxed))
                .then(|| sqlpp_eval::EvalError::Resource("injected fault at wal-append".into()))
        });
        let (store, _) = DurableStore::open(DurabilityConfig::new(&dir).with_fault(inj)).unwrap();
        assert!(matches!(
            store.append_commit("t", &bag![1i64]),
            Err(DurabilityError::Injected(_))
        ));
        // The failed append left no bytes; the next one gets LSN 1.
        assert_eq!(store.append_commit("t", &bag![1i64]).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
