//! SQL++ tuples (§II): unordered attribute name/value pairs.
//!
//! Unlike a schemaful SQL row, a SQL++ tuple is *unordered* and may contain
//! *duplicate attribute names* ("in the interest of compatibility with
//! non-strict data in formats such as JSON, Ion, and CBOR"). Dot navigation
//! binds the **first** pair with the requested name, which the paper warns
//! "can lead to nonreproducible results in the presence of duplicate
//! attribute names" — we make it deterministic (insertion order) but keep
//! the duplicate-tolerant model.
//!
//! The crucial construction rule (§IV-B): an attribute whose value is
//! MISSING is **not stored** — [`Tuple::insert`] silently drops it, so
//! `MISSING` can never be observed as a stored attribute value.

use crate::value::Value;

/// An unordered multi-map of attribute names to values.
///
/// Internally pairs are kept in insertion order; all equality and hashing
/// operations treat the pairs as an unordered multiset (see [`crate::cmp`]).
#[derive(Clone, Default, PartialEq)]
pub struct Tuple {
    pairs: Vec<(String, Value)>,
}

impl Tuple {
    /// Creates an empty tuple.
    pub fn new() -> Self {
        Tuple { pairs: Vec::new() }
    }

    /// Creates an empty tuple with room for `n` attributes.
    pub fn with_capacity(n: usize) -> Self {
        Tuple {
            pairs: Vec::with_capacity(n),
        }
    }

    /// Builds a tuple from pairs, applying the MISSING-dropping rule.
    pub fn from_pairs<I, K>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        let mut t = Tuple::new();
        for (k, v) in pairs {
            t.insert(k, v);
        }
        t
    }

    /// Inserts an attribute. Per §IV-B, a MISSING value is dropped: "the
    /// output tuple will not have a title attribute". Duplicate names are
    /// allowed and appended.
    pub fn insert(&mut self, name: impl Into<String>, value: Value) {
        if value.is_missing() {
            return;
        }
        self.pairs.push((name.into(), value));
    }

    /// Inserts or replaces the first attribute with this name (used by
    /// updaters and the pivot operator, where a later binding of the same
    /// name overwrites).
    pub fn upsert(&mut self, name: impl Into<String>, value: Value) {
        if value.is_missing() {
            return;
        }
        let name = name.into();
        if let Some(slot) = self.pairs.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value;
        } else {
            self.pairs.push((name, value));
        }
    }

    /// First value bound to `name`, if any.
    #[inline]
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// All values bound to `name` (usually zero or one).
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Value> + 'a {
        self.pairs
            .iter()
            .filter(move |(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// True when some pair has this name.
    pub fn contains(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == name)
    }

    /// Removes all pairs with this name, returning the first removed value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let mut removed = None;
        self.pairs.retain_mut(|(k, v)| {
            if k == name {
                if removed.is_none() {
                    removed = Some(std::mem::take(v));
                }
                false
            } else {
                true
            }
        });
        removed
    }

    /// Number of pairs (duplicates counted).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the tuple has no attributes.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Attribute names in insertion order (duplicates included).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.pairs.iter().map(|(k, _)| k.as_str())
    }

    /// Consumes the tuple into its pairs.
    pub fn into_pairs(self) -> Vec<(String, Value)> {
        self.pairs
    }

    /// Concatenates another tuple's pairs onto this one (tuple merge, used
    /// by `SELECT *` over multiple FROM variables).
    pub fn extend_from(&mut self, other: Tuple) {
        self.pairs.extend(other.pairs);
    }
}

impl std::fmt::Debug for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Delegate to the paper-notation printer via Value's Debug.
        write!(f, "{:?}", Value::Tuple(self.clone()))
    }
}

impl FromIterator<(String, Value)> for Tuple {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Tuple::from_pairs(iter)
    }
}

impl IntoIterator for Tuple {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.pairs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut t = Tuple::new();
        t.insert("a", Value::Int(1));
        t.insert("b", Value::Str("x".into()));
        assert_eq!(t.get("a"), Some(&Value::Int(1)));
        assert_eq!(t.get("b"), Some(&Value::Str("x".into())));
        assert_eq!(t.get("c"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn missing_values_are_dropped_on_insert() {
        let mut t = Tuple::new();
        t.insert("title", Value::Missing);
        assert!(t.is_empty());
        assert!(!t.contains("title"));
        // NULL, by contrast, is stored.
        t.insert("title", Value::Null);
        assert_eq!(t.get("title"), Some(&Value::Null));
    }

    #[test]
    fn duplicate_names_are_kept_and_first_wins_on_get() {
        let mut t = Tuple::new();
        t.insert("x", Value::Int(1));
        t.insert("x", Value::Int(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("x"), Some(&Value::Int(1)));
        assert_eq!(t.get_all("x").count(), 2);
    }

    #[test]
    fn upsert_replaces_first_occurrence() {
        let mut t = Tuple::new();
        t.insert("x", Value::Int(1));
        t.upsert("x", Value::Int(9));
        assert_eq!(t.get("x"), Some(&Value::Int(9)));
        assert_eq!(t.len(), 1);
        t.upsert("y", Value::Int(5));
        assert_eq!(t.get("y"), Some(&Value::Int(5)));
        // Upserting MISSING is a no-op, like insert.
        t.upsert("y", Value::Missing);
        assert_eq!(t.get("y"), Some(&Value::Int(5)));
    }

    #[test]
    fn remove_drops_all_duplicates() {
        let mut t = Tuple::new();
        t.insert("x", Value::Int(1));
        t.insert("x", Value::Int(2));
        t.insert("y", Value::Int(3));
        assert_eq!(t.remove("x"), Some(Value::Int(1)));
        assert!(!t.contains("x"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove("zzz"), None);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Tuple::from_pairs([("a".to_string(), Value::Int(1))]);
        let b = Tuple::from_pairs([("b".to_string(), Value::Int(2))]);
        a.extend_from(b);
        assert_eq!(a.len(), 2);
        assert!(a.contains("a") && a.contains("b"));
    }
}
