//! Rendering values in the paper's self-describing object notation:
//! bags as `{{ … }}`, arrays as `[ … ]`, tuples as `{ 'name': value }`
//! with single-quoted strings — "an object notation using SQL literals"
//! (§II). `Display` prints compactly; [`to_pretty`] indents like the
//! paper's listings. MISSING renders as the bare keyword `MISSING` (it can
//! occur as a bag element of a `SELECT VALUE` result, never inside a
//! tuple).

use std::fmt;

use crate::value::Value;

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self, f)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self, f)
    }
}

fn write_escaped(s: &str, out: &mut impl fmt::Write) -> fmt::Result {
    out.write_char('\'')?;
    for c in s.chars() {
        match c {
            '\'' => out.write_str("''")?, // SQL-style doubled quote
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('\'')
}

/// Formats a float so it always reads back as a float (keeps a `.0` on
/// integral values) and survives round-tripping.
pub fn format_float(v: f64, out: &mut impl fmt::Write) -> fmt::Result {
    if v.is_nan() {
        out.write_str("`nan`")
    } else if v.is_infinite() {
        out.write_str(if v > 0.0 { "`+inf`" } else { "`-inf`" })
    } else if v == v.trunc() && v.abs() < 1e15 {
        write!(out, "{v:.1}")
    } else {
        write!(out, "{v}")
    }
}

fn write_compact(v: &Value, out: &mut impl fmt::Write) -> fmt::Result {
    match v {
        Value::Missing => out.write_str("MISSING"),
        Value::Null => out.write_str("null"),
        Value::Bool(b) => write!(out, "{b}"),
        Value::Int(i) => write!(out, "{i}"),
        Value::Float(x) => format_float(*x, out),
        Value::Decimal(d) => write!(out, "{d}"),
        Value::Str(s) => write_escaped(s, out),
        Value::Bytes(b) => {
            out.write_str("x'")?;
            for byte in b {
                write!(out, "{byte:02x}")?;
            }
            out.write_char('\'')
        }
        Value::Array(items) => {
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_str(", ")?;
                }
                write_compact(item, out)?;
            }
            out.write_char(']')
        }
        Value::Bag(items) => {
            out.write_str("{{")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_str(", ")?;
                }
                write_compact(item, out)?;
            }
            out.write_str("}}")
        }
        Value::Tuple(t) => {
            out.write_char('{')?;
            for (i, (name, value)) in t.iter().enumerate() {
                if i > 0 {
                    out.write_str(", ")?;
                }
                write_escaped(name, out)?;
                out.write_str(": ")?;
                write_compact(value, out)?;
            }
            out.write_char('}')
        }
    }
}

/// Pretty multi-line rendering in the paper's listing style.
pub fn to_pretty(v: &Value) -> String {
    let mut s = String::new();
    write_pretty(v, 0, &mut s).expect("string write cannot fail");
    s
}

fn is_flat(v: &Value) -> bool {
    match v {
        Value::Array(items) | Value::Bag(items) => {
            items.len() <= 4 && items.iter().all(|i| i.is_scalar() || i.is_absent())
        }
        Value::Tuple(t) => t.len() <= 3 && t.iter().all(|(_, v)| v.is_scalar() || v.is_absent()),
        _ => true,
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) -> fmt::Result {
    if is_flat(v) {
        return write_compact(v, out);
    }
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&pad);
                write_pretty(item, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Bag(items) => {
            out.push_str("{{");
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&pad);
                write_pretty(item, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push_str("}}");
        }
        Value::Tuple(t) => {
            out.push('{');
            for (i, (name, value)) in t.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&pad);
                write_escaped(name, out)?;
                out.push_str(": ");
                write_pretty(value, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        _ => write_compact(v, out)?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{array, bag, tuple};

    #[test]
    fn scalars_render_in_paper_notation() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Missing.to_string(), "MISSING");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Str("Bob Smith".into()).to_string(), "'Bob Smith'");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).to_string(), "x'dead'");
    }

    #[test]
    fn string_escaping_doubles_quotes() {
        assert_eq!(Value::Str("it's".into()).to_string(), "'it''s'");
        assert_eq!(Value::Str("a\nb".into()).to_string(), "'a\\nb'");
    }

    #[test]
    fn collections_render_with_paper_delimiters() {
        assert_eq!(array![1i64, 2i64].to_string(), "[1, 2]");
        assert_eq!(bag![1i64].to_string(), "{{1}}");
        assert_eq!(Value::empty_bag().to_string(), "{{}}");
        let t = Value::Tuple(tuple! {"id" => 3i64, "name" => "Bob"});
        assert_eq!(t.to_string(), "{'id': 3, 'name': 'Bob'}");
    }

    #[test]
    fn pretty_prints_nested_structures_with_indentation() {
        let v = bag![Value::Tuple(tuple! {
            "id" => 3i64,
            "name" => "Bob Smith",
            "projects" => array!["a", "b"],
        })];
        let pretty = to_pretty(&v);
        assert!(pretty.contains("{{\n"));
        assert!(pretty.contains("  {"));
        assert!(pretty.contains("'projects': ['a', 'b']"));
    }

    #[test]
    fn small_flat_values_stay_on_one_line() {
        assert_eq!(to_pretty(&array![1i64, 2i64]), "[1, 2]");
    }
}
