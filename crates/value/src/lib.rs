//! # sqlpp-value — the SQL++ data model
//!
//! This crate implements §II of *SQL++: We Can Finally Relax!* (Carey et
//! al., ICDE 2024): a dynamically typed value universe in which
//!
//! * relational rows are just one special case of [`Tuple`]s,
//! * collections are [`Value::Array`]s (`[ … ]`) or [`Value::Bag`]s
//!   (`{{ … }}`, multisets), freely heterogeneous and nestable,
//! * missing information has **two** representations: present-but-unknown
//!   [`Value::Null`] and not-even-present [`Value::Missing`], and
//! * tuples are unordered and tolerate duplicate attribute names.
//!
//! The crate also fixes the comparison semantics every other layer relies
//! on: the SQL three-valued `=` ([`cmp::sql_eq`]), a structural equivalence
//! for bags/DISTINCT/grouping ([`cmp::deep_eq`]), a cross-type total order
//! for ORDER BY ([`cmp::total_cmp`]), and a hash consistent with all of it
//! ([`hash::GroupKey`]).
//!
//! ```
//! use sqlpp_value::{bag, tuple, Value};
//!
//! // Listing 1's first employee, as a Rust literal:
//! let bob = tuple! {
//!     "id" => 3i64,
//!     "name" => "Bob Smith",
//!     "title" => Value::Null,
//!     "projects" => bag![
//!         Value::Tuple(tuple! {"name" => "Serverless Query"}),
//!     ],
//! };
//! // Navigation into an absent attribute yields MISSING, not an error:
//! assert_eq!(Value::Tuple(bob).path("salary"), Value::Missing);
//! ```

#![warn(missing_docs)]

pub mod cmp;
pub mod decimal;
mod display;
pub mod hash;
mod macros;
mod tuple;
mod value;

pub use decimal::{Decimal, DecimalError};
pub use display::to_pretty;
pub use hash::GroupKey;
pub use tuple::Tuple;
pub use value::{Value, ValueKind};

/// Canonicalizes a value for deterministic snapshot output: bags are
/// recursively sorted by the total order. Arrays and tuples keep their
/// order (arrays are ordered; tuple insertion order is already
/// deterministic in this implementation).
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Bag(items) => {
            let mut items: Vec<Value> = items.iter().map(canonicalize).collect();
            items.sort_by(cmp::total_cmp);
            Value::Bag(items)
        }
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        Value::Tuple(t) => {
            let mut out = Tuple::with_capacity(t.len());
            for (name, value) in t.iter() {
                out.insert(name, canonicalize(value));
            }
            Value::Tuple(out)
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_sorts_bags_recursively() {
        let v = bag![bag![2i64, 1i64], bag![3i64]];
        let c = canonicalize(&v);
        // Bags compare lexicographically over their sorted elements, so
        // {{1, 2}} precedes {{3}}.
        assert_eq!(c.to_string(), "{{{{1, 2}}, {{3}}}}");
        // Canonical forms of equal bags are identical.
        let v2 = bag![bag![3i64], bag![1i64, 2i64]];
        assert_eq!(format!("{}", canonicalize(&v2)), format!("{c}"));
    }
}
