//! The SQL++ value: the paper's §II data model.
//!
//! > "A value can be absent, scalar, tuple, collection, or any composition
//! > thereof. […] Collections may be arrays […] or bags (i.e., multisets)."
//!
//! The two *absent* values are first-class:
//!
//! * [`Value::Null`] — present-but-unknown, exactly SQL's NULL.
//! * [`Value::Missing`] — "the path result in cases where navigation fails
//!   to bind to any information or where a function fails due to missing or
//!   wrongly typed inputs" (§II). MISSING may flow through expressions but
//!   may never be stored as a tuple attribute's value.

use crate::decimal::Decimal;
use crate::tuple::Tuple;

/// A dynamically typed SQL++ value.
#[derive(Clone, PartialEq)]
pub enum Value {
    /// The special absent value produced by failed navigation or, in
    /// permissive mode, by mistyped function inputs (§IV-B).
    Missing,
    /// SQL's NULL: the attribute is present but its value is unknown.
    Null,
    /// SQL BOOLEAN.
    Bool(bool),
    /// SQL BIGINT (64-bit signed integer).
    Int(i64),
    /// SQL DOUBLE PRECISION.
    Float(f64),
    /// SQL DECIMAL/NUMERIC (exact fixed-point).
    Decimal(Decimal),
    /// SQL VARCHAR (UTF-8 string).
    Str(String),
    /// Binary data (maps to Ion blob / CBOR byte string).
    Bytes(Vec<u8>),
    /// An ordered collection, `[ … ]` in the paper's notation.
    Array(Vec<Value>),
    /// An unordered multiset, `{{ … }}` (or `<< … >>`) in the paper's
    /// notation. Element order in the vector is an implementation detail;
    /// bag equality ignores it (see [`crate::cmp`]).
    Bag(Vec<Value>),
    /// A set of attribute name/value pairs; unordered and allowing
    /// duplicate names (§II).
    Tuple(Tuple),
}

/// Coarse runtime type of a value, used for error messages, type-dispatch in
/// functions, and the cross-type total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // Variants mirror `Value` one-to-one.
pub enum ValueKind {
    Missing,
    Null,
    Bool,
    Int,
    Float,
    Decimal,
    Str,
    Bytes,
    Array,
    Tuple,
    Bag,
}

impl ValueKind {
    /// Lower-case type name as surfaced in diagnostics and the
    /// `IS <type>` predicates.
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::Missing => "missing",
            ValueKind::Null => "null",
            ValueKind::Bool => "boolean",
            ValueKind::Int => "integer",
            ValueKind::Float => "float",
            ValueKind::Decimal => "decimal",
            ValueKind::Str => "string",
            ValueKind::Bytes => "bytes",
            ValueKind::Array => "array",
            ValueKind::Tuple => "tuple",
            ValueKind::Bag => "bag",
        }
    }
}

impl Value {
    /// The runtime kind of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Missing => ValueKind::Missing,
            Value::Null => ValueKind::Null,
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Decimal(_) => ValueKind::Decimal,
            Value::Str(_) => ValueKind::Str,
            Value::Bytes(_) => ValueKind::Bytes,
            Value::Array(_) => ValueKind::Array,
            Value::Tuple(_) => ValueKind::Tuple,
            Value::Bag(_) => ValueKind::Bag,
        }
    }

    /// True for the two absent values, NULL and MISSING.
    #[inline]
    pub fn is_absent(&self) -> bool {
        matches!(self, Value::Missing | Value::Null)
    }

    /// True only for MISSING.
    #[inline]
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// True only for NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for any numeric scalar.
    #[inline]
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Decimal(_))
    }

    /// True for arrays and bags — the types FROM iterates over directly.
    pub fn is_collection(&self) -> bool {
        matches!(self, Value::Array(_) | Value::Bag(_))
    }

    /// True for scalars (including the absent values, per the paper's
    /// classification of values as absent/scalar/tuple/collection we keep
    /// absent values *out* of this predicate).
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Value::Bool(_)
                | Value::Int(_)
                | Value::Float(_)
                | Value::Decimal(_)
                | Value::Str(_)
                | Value::Bytes(_)
        )
    }

    /// Borrows the elements of an array or bag.
    pub fn as_elements(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) | Value::Bag(v) => Some(v),
            _ => None,
        }
    }

    /// Consumes an array or bag, yielding its elements.
    pub fn into_elements(self) -> Option<Vec<Value>> {
        match self {
            Value::Array(v) | Value::Bag(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the tuple payload.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Borrows the string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer payload, if the value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (lossy for big ints/decimals).
    pub fn as_f64_lossy(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Decimal(d) => Some(d.to_f64()),
            _ => None,
        }
    }

    /// Empty bag constant.
    pub fn empty_bag() -> Value {
        Value::Bag(Vec::new())
    }

    /// Empty array constant.
    pub fn empty_array() -> Value {
        Value::Array(Vec::new())
    }

    /// Navigation `self.attr` (§III / §IV-B case 1): the first binding of
    /// `attr` in a tuple, and MISSING when the receiver is not a tuple or
    /// the attribute is absent. Navigation on NULL yields NULL (the
    /// receiver is *present* but unknown), mirroring PartiQL.
    #[inline]
    pub fn path(&self, attr: &str) -> Value {
        match self {
            Value::Tuple(t) => t.get(attr).cloned().unwrap_or(Value::Missing),
            Value::Null => Value::Null,
            _ => Value::Missing,
        }
    }

    /// Index navigation `self[i]` for arrays; MISSING when out of bounds or
    /// the receiver is not an array; NULL receiver propagates NULL.
    #[inline]
    pub fn index(&self, i: i64) -> Value {
        match self {
            Value::Array(v) => {
                if i >= 0 {
                    v.get(i as usize).cloned().unwrap_or(Value::Missing)
                } else {
                    Value::Missing
                }
            }
            Value::Null => Value::Null,
            _ => Value::Missing,
        }
    }

    /// Approximate number of heap nodes, used to bound generated test data
    /// and to report result sizes.
    pub fn node_count(&self) -> usize {
        match self {
            Value::Array(v) | Value::Bag(v) => 1 + v.iter().map(Value::node_count).sum::<usize>(),
            Value::Tuple(t) => 1 + t.iter().map(|(_, v)| v.node_count()).sum::<usize>(),
            _ => 1,
        }
    }
}

impl Default for Value {
    /// The default value is MISSING — "no information".
    fn default() -> Self {
        Value::Missing
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Decimal> for Value {
    fn from(v: Decimal) -> Self {
        Value::Decimal(v)
    }
}
impl From<Tuple> for Value {
    fn from(v: Tuple) -> Self {
        Value::Tuple(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    /// `None` maps to NULL (not MISSING): an `Option` models a present
    /// column whose value may be unknown.
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn kinds_and_predicates() {
        assert_eq!(Value::Missing.kind().name(), "missing");
        assert_eq!(Value::Int(1).kind(), ValueKind::Int);
        assert!(Value::Null.is_absent());
        assert!(Value::Missing.is_absent());
        assert!(!Value::Int(0).is_absent());
        assert!(Value::Float(1.0).is_number());
        assert!(Value::Bag(vec![]).is_collection());
        assert!(Value::Str("x".into()).is_scalar());
        assert!(!Value::Null.is_scalar());
    }

    #[test]
    fn navigation_into_missing_attribute_yields_missing() {
        // §IV-B: {'id': 3, 'name': 'Bob Smith'}.title == MISSING
        let bob = tuple! { "id" => 3i64, "name" => "Bob Smith" };
        assert_eq!(Value::Tuple(bob).path("title"), Value::Missing);
    }

    #[test]
    fn navigation_into_present_attribute() {
        let t = tuple! { "a" => 1i64 };
        assert_eq!(Value::Tuple(t).path("a"), Value::Int(1));
    }

    #[test]
    fn navigation_on_non_tuple_is_missing_and_null_propagates() {
        assert_eq!(Value::Int(3).path("x"), Value::Missing);
        assert_eq!(Value::Null.path("x"), Value::Null);
        assert_eq!(Value::Missing.path("x"), Value::Missing);
    }

    #[test]
    fn array_indexing() {
        let a = Value::Array(vec![Value::Int(10), Value::Int(20)]);
        assert_eq!(a.index(0), Value::Int(10));
        assert_eq!(a.index(2), Value::Missing);
        assert_eq!(a.index(-1), Value::Missing);
        assert_eq!(Value::Str("s".into()).index(0), Value::Missing);
        assert_eq!(Value::Null.index(0), Value::Null);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(2i64)), Value::Int(2));
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
    }

    #[test]
    fn node_count_counts_nested_nodes() {
        let v = Value::Bag(vec![Value::Array(vec![Value::Int(1), Value::Int(2)])]);
        assert_eq!(v.node_count(), 4);
    }
}
