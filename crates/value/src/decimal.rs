//! A small exact decimal type for SQL++ scalar arithmetic.
//!
//! SQL's numeric tower includes exact decimals; JSON and the paper's object
//! notation print them as plain numbers. We implement a fixed-point decimal
//! as a 128-bit mantissa plus a base-10 scale, which comfortably covers the
//! precision SQL++ implementations are expected to support without pulling
//! in an external big-number dependency.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Maximum scale we keep after arithmetic. Division results are rounded
/// (half away from zero) to this many fractional digits.
pub const MAX_SCALE: u32 = 20;

/// An exact base-10 fixed-point number: `mantissa * 10^-scale`.
///
/// The representation is kept *normalized*: trailing zero fractional digits
/// are removed so that equal numbers have equal representations (`1.50` and
/// `1.5` are the same `Decimal`), which lets `Eq`/`Hash` be derived from the
/// fields directly.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal {
    mantissa: i128,
    scale: u32,
}

/// Errors produced by decimal parsing and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecimalError {
    /// The textual form was not a valid decimal literal.
    Parse(String),
    /// The magnitude exceeded the 128-bit mantissa.
    Overflow,
    /// Division by zero.
    DivisionByZero,
}

impl fmt::Display for DecimalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecimalError::Parse(s) => write!(f, "invalid decimal literal: {s:?}"),
            DecimalError::Overflow => write!(f, "decimal overflow"),
            DecimalError::DivisionByZero => write!(f, "decimal division by zero"),
        }
    }
}

impl std::error::Error for DecimalError {}

fn pow10(n: u32) -> Option<i128> {
    10i128.checked_pow(n)
}

impl Decimal {
    /// Builds a decimal from a raw mantissa and scale, normalizing trailing
    /// fractional zeros.
    pub fn new(mantissa: i128, scale: u32) -> Self {
        let mut d = Decimal { mantissa, scale };
        d.normalize();
        d
    }

    /// The decimal value zero.
    pub const ZERO: Decimal = Decimal {
        mantissa: 0,
        scale: 0,
    };
    /// The decimal value one.
    pub const ONE: Decimal = Decimal {
        mantissa: 1,
        scale: 0,
    };

    /// Raw mantissa (`self = mantissa * 10^-scale`).
    pub fn mantissa(&self) -> i128 {
        self.mantissa
    }

    /// Raw base-10 scale.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    fn normalize(&mut self) {
        if self.mantissa == 0 {
            self.scale = 0;
            return;
        }
        while self.scale > 0 && self.mantissa % 10 == 0 {
            self.mantissa /= 10;
            self.scale -= 1;
        }
    }

    /// True when the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    /// True for values strictly less than zero.
    pub fn is_negative(&self) -> bool {
        self.mantissa < 0
    }

    /// Converts an `i64` losslessly.
    pub fn from_i64(v: i64) -> Self {
        Decimal {
            mantissa: v as i128,
            scale: 0,
        }
    }

    /// Converts a finite `f64` by going through its shortest display form;
    /// returns `None` for NaN/infinite inputs.
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        // The shortest round-trip display of an f64 is a valid decimal
        // literal (possibly in exponent form), so reuse the parser.
        format!("{v}").parse().ok()
    }

    /// Lossy conversion to `f64`, correctly rounded (the naive
    /// `mantissa / 10^scale` double-rounds and can drift by an ULP, which
    /// would break text round-trips of float-derived decimals).
    pub fn to_f64(&self) -> f64 {
        if self.scale == 0 {
            return self.mantissa as f64;
        }
        self.to_string()
            .parse()
            .expect("decimal text is a valid f64")
    }

    /// Lossless conversion to `i64` when the value is integral and in range.
    pub fn to_i64(&self) -> Option<i64> {
        if self.scale != 0 {
            return None;
        }
        i64::try_from(self.mantissa).ok()
    }

    /// Truncates toward zero to an `i64` (SQL `CAST(x AS INT)` semantics
    /// differ per dialect; we truncate, as PartiQL does).
    pub fn trunc_to_i64(&self) -> Option<i64> {
        let p = pow10(self.scale)?;
        i64::try_from(self.mantissa / p).ok()
    }

    /// Rescales both operands to a common scale, for comparison/addition.
    fn align(a: Decimal, b: Decimal) -> Option<(i128, i128, u32)> {
        let scale = a.scale.max(b.scale);
        let am = a.mantissa.checked_mul(pow10(scale - a.scale)?)?;
        let bm = b.mantissa.checked_mul(pow10(scale - b.scale)?)?;
        Some((am, bm, scale))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Decimal) -> Result<Decimal, DecimalError> {
        let (a, b, s) = Self::align(self, rhs).ok_or(DecimalError::Overflow)?;
        Ok(Decimal::new(
            a.checked_add(b).ok_or(DecimalError::Overflow)?,
            s,
        ))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Decimal) -> Result<Decimal, DecimalError> {
        let (a, b, s) = Self::align(self, rhs).ok_or(DecimalError::Overflow)?;
        Ok(Decimal::new(
            a.checked_sub(b).ok_or(DecimalError::Overflow)?,
            s,
        ))
    }

    /// Checked multiplication.
    pub fn checked_mul(self, rhs: Decimal) -> Result<Decimal, DecimalError> {
        let m = self
            .mantissa
            .checked_mul(rhs.mantissa)
            .ok_or(DecimalError::Overflow)?;
        Ok(Decimal::new(m, self.scale + rhs.scale))
    }

    /// Checked division, rounded half-away-from-zero to [`MAX_SCALE`].
    pub fn checked_div(self, rhs: Decimal) -> Result<Decimal, DecimalError> {
        if rhs.is_zero() {
            return Err(DecimalError::DivisionByZero);
        }
        // Compute (self / rhs) at MAX_SCALE fractional digits:
        //   result_mantissa = self.m * 10^(MAX_SCALE + rhs.scale - self.scale) / rhs.m
        // Guard the exponent so it stays non-negative by pre-scaling.
        let target = MAX_SCALE + rhs.scale;
        let (num, num_scale) = if target >= self.scale {
            let shift = pow10(target - self.scale).ok_or(DecimalError::Overflow)?;
            (
                self.mantissa
                    .checked_mul(shift)
                    .ok_or(DecimalError::Overflow)?,
                MAX_SCALE,
            )
        } else {
            (self.mantissa, self.scale - rhs.scale)
        };
        let q = num / rhs.mantissa;
        let r = num % rhs.mantissa;
        // Round half away from zero. `|r| < |den|`, so compare without the
        // doubling that could overflow: 2|r| >= |den|  <=>  |r| >= |den|-|r|.
        let r_abs = r.unsigned_abs();
        let den_abs = rhs.mantissa.unsigned_abs();
        let rounded = if r != 0 && r_abs >= den_abs - r_abs {
            if (num < 0) ^ (rhs.mantissa < 0) {
                q - 1
            } else {
                q + 1
            }
        } else {
            q
        };
        Ok(Decimal::new(rounded, num_scale))
    }

    /// Checked remainder (`a - trunc(a/b)*b`), matching SQL `%` on decimals.
    pub fn checked_rem(self, rhs: Decimal) -> Result<Decimal, DecimalError> {
        if rhs.is_zero() {
            return Err(DecimalError::DivisionByZero);
        }
        let (a, b, s) = Self::align(self, rhs).ok_or(DecimalError::Overflow)?;
        Ok(Decimal::new(a % b, s))
    }

    /// Absolute value.
    pub fn abs(self) -> Decimal {
        Decimal {
            mantissa: self.mantissa.abs(),
            scale: self.scale,
        }
    }

    /// Largest integral decimal `<= self`.
    pub fn floor(self) -> Decimal {
        if self.scale == 0 {
            return self;
        }
        let p = pow10(self.scale).expect("scale bounded");
        let q = self.mantissa.div_euclid(p);
        Decimal::new(q, 0)
    }

    /// Smallest integral decimal `>= self`.
    pub fn ceil(self) -> Decimal {
        if self.scale == 0 {
            return self;
        }
        let p = pow10(self.scale).expect("scale bounded");
        let q = self.mantissa.div_euclid(p);
        let r = self.mantissa.rem_euclid(p);
        Decimal::new(q + i128::from(r != 0), 0)
    }

    /// Rounds half away from zero to `digits` fractional digits.
    pub fn round_dp(self, digits: u32) -> Decimal {
        if self.scale <= digits {
            return self;
        }
        let drop = self.scale - digits;
        let p = pow10(drop).expect("scale bounded");
        let q = self.mantissa / p;
        let r = self.mantissa % p;
        let adj = if r.unsigned_abs() * 2 >= p.unsigned_abs() {
            if self.mantissa < 0 {
                -1
            } else {
                1
            }
        } else {
            0
        };
        Decimal::new(q + adj, digits)
    }

    /// Total-order comparison (exact; never goes through floats).
    pub fn cmp_exact(&self, other: &Decimal) -> Ordering {
        match Self::align(*self, *other) {
            Some((a, b, _)) => a.cmp(&b),
            // On alignment overflow fall back to sign + f64 comparison;
            // values this large only arise from pathological arithmetic.
            None => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_exact(other)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let sign = if self.mantissa < 0 { "-" } else { "" };
        let digits = self.mantissa.unsigned_abs().to_string();
        let scale = self.scale as usize;
        if digits.len() > scale {
            let (int, frac) = digits.split_at(digits.len() - scale);
            write!(f, "{sign}{int}.{frac}")
        } else {
            write!(f, "{sign}0.{}{}", "0".repeat(scale - digits.len()), digits)
        }
    }
}

impl fmt::Debug for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Decimal({self})")
    }
}

impl FromStr for Decimal {
    type Err = DecimalError;

    /// Parses decimal literals with optional sign, fraction, and exponent:
    /// `-12`, `3.14`, `.5`, `1e3`, `2.5E-2`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || DecimalError::Parse(s.to_string());
        let bytes = s.as_bytes();
        if bytes.is_empty() {
            return Err(err());
        }
        let mut i = 0;
        let neg = match bytes[0] {
            b'-' => {
                i += 1;
                true
            }
            b'+' => {
                i += 1;
                false
            }
            _ => false,
        };
        let mut mantissa: i128 = 0;
        let mut scale: i64 = 0;
        let mut seen_digit = false;
        let mut seen_dot = false;
        while i < bytes.len() {
            match bytes[i] {
                b'0'..=b'9' => {
                    seen_digit = true;
                    mantissa = mantissa
                        .checked_mul(10)
                        .and_then(|m| m.checked_add((bytes[i] - b'0') as i128))
                        .ok_or(DecimalError::Overflow)?;
                    if seen_dot {
                        scale += 1;
                    }
                    i += 1;
                }
                b'.' if !seen_dot => {
                    seen_dot = true;
                    i += 1;
                }
                b'e' | b'E' => break,
                _ => return Err(err()),
            }
        }
        if !seen_digit {
            return Err(err());
        }
        if i < bytes.len() {
            // Exponent part.
            i += 1; // consume 'e'
            let exp_str = std::str::from_utf8(&bytes[i..]).map_err(|_| err())?;
            let exp: i64 = exp_str.parse().map_err(|_| err())?;
            scale -= exp;
        }
        if neg {
            mantissa = -mantissa;
        }
        // Fold a negative scale (large exponent) into the mantissa.
        while scale < 0 {
            mantissa = mantissa.checked_mul(10).ok_or(DecimalError::Overflow)?;
            scale += 1;
        }
        if scale > MAX_SCALE as i64 * 2 {
            return Err(DecimalError::Overflow);
        }
        Ok(Decimal::new(mantissa, scale as u32))
    }
}

impl std::ops::Neg for Decimal {
    type Output = Decimal;
    fn neg(self) -> Decimal {
        Decimal {
            mantissa: -self.mantissa,
            scale: self.scale,
        }
    }
}

impl From<i64> for Decimal {
    fn from(v: i64) -> Self {
        Decimal::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "3.14", "-0.5", "123456789.000000001", "42"] {
            assert_eq!(d(s).to_string(), s);
        }
    }

    #[test]
    fn parse_normalizes_trailing_zeros() {
        assert_eq!(d("1.50"), d("1.5"));
        assert_eq!(d("1.50").to_string(), "1.5");
        assert_eq!(d("0.000"), Decimal::ZERO);
    }

    #[test]
    fn parse_leading_dot_and_exponent() {
        assert_eq!(d(".5"), d("0.5"));
        assert_eq!(d("1e3"), d("1000"));
        assert_eq!(d("2.5E-2"), d("0.025"));
        assert_eq!(d("-1.5e2"), d("-150"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "-", "1.2.3", "abc", "1e", "--1", "."] {
            assert!(s.parse::<Decimal>().is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(d("1.1").checked_add(d("2.2")).unwrap(), d("3.3"));
        assert_eq!(d("1").checked_sub(d("0.999")).unwrap(), d("0.001"));
        assert_eq!(d("1.5").checked_mul(d("2")).unwrap(), d("3"));
        assert_eq!(d("1").checked_div(d("4")).unwrap(), d("0.25"));
        assert_eq!(d("7").checked_rem(d("2")).unwrap(), d("1"));
        assert_eq!(d("7.5").checked_rem(d("2")).unwrap(), d("1.5"));
    }

    #[test]
    fn division_rounds_half_away_from_zero() {
        // 1/3 at MAX_SCALE digits.
        let third = d("1").checked_div(d("3")).unwrap();
        assert_eq!(third.to_string(), format!("0.{}", "3".repeat(20)));
        let two_thirds = d("2").checked_div(d("3")).unwrap();
        assert_eq!(two_thirds.to_string(), format!("0.{}7", "6".repeat(19)));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(
            d("1").checked_div(Decimal::ZERO),
            Err(DecimalError::DivisionByZero)
        );
        assert_eq!(
            d("1").checked_rem(Decimal::ZERO),
            Err(DecimalError::DivisionByZero)
        );
    }

    #[test]
    fn comparison_is_exact_across_scales() {
        assert!(d("0.1") < d("0.2"));
        assert!(d("1.10") == d("1.1"));
        assert!(d("-3") < d("2.5"));
        assert!(d("10") > d("9.999999999"));
    }

    #[test]
    fn floor_ceil_round() {
        assert_eq!(d("1.5").floor(), d("1"));
        assert_eq!(d("-1.5").floor(), d("-2"));
        assert_eq!(d("1.5").ceil(), d("2"));
        assert_eq!(d("-1.5").ceil(), d("-1"));
        assert_eq!(d("2").floor(), d("2"));
        assert_eq!(d("2.449").round_dp(1), d("2.4"));
        assert_eq!(d("2.45").round_dp(1), d("2.5"));
        assert_eq!(d("-2.45").round_dp(1), d("-2.5"));
        assert_eq!(d("2.4").round_dp(3), d("2.4"));
    }

    #[test]
    fn conversions() {
        assert_eq!(Decimal::from_i64(42).to_i64(), Some(42));
        assert_eq!(d("42.5").to_i64(), None);
        assert_eq!(d("42.5").trunc_to_i64(), Some(42));
        assert_eq!(d("-42.5").trunc_to_i64(), Some(-42));
        assert_eq!(Decimal::from_f64(1.25).unwrap(), d("1.25"));
        assert!(Decimal::from_f64(f64::NAN).is_none());
        assert!((d("2.25").to_f64() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn overflow_reported() {
        let big = Decimal::new(i128::MAX / 2, 0);
        assert_eq!(big.checked_mul(big), Err(DecimalError::Overflow));
    }
}
