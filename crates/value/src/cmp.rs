//! Comparison semantics.
//!
//! SQL++ "defin\[es\] equality identically to SQL in the exclusive presence
//! of scalars and NULL" (§V-B) — so the `=` operator is three-valued at the
//! top level (NULL in → NULL out, MISSING in → MISSING out, §IV-B case 3),
//! while *structural* equality (used for bag/multiset equality, DISTINCT,
//! and grouping) is a genuine equivalence relation.
//!
//! The paper leaves the cross-type ORDER BY order to implementations; we
//! adopt the PartiQL reference order, documented in DESIGN.md §3:
//!
//! ```text
//! MISSING < NULL < booleans < numbers < strings < bytes
//!         < arrays < tuples < bags
//! ```

use std::cmp::Ordering;

use crate::decimal::Decimal;
use crate::tuple::Tuple;
use crate::value::Value;

/// Numeric comparison across the Int/Float/Decimal tower.
///
/// Exact where possible: Int/Int and Decimal/Decimal never round; an
/// Int/Decimal pair is compared as decimals; only pairs involving a Float
/// go through `f64`. NaN is ordered greater than every other number and
/// equal to itself so the result is a total order.
pub fn compare_numbers(a: &Value, b: &Value) -> Option<Ordering> {
    use Value::*;
    Some(match (a, b) {
        (Int(x), Int(y)) => x.cmp(y),
        (Decimal(x), Decimal(y)) => x.cmp_exact(y),
        (Int(x), Decimal(y)) => crate::decimal::Decimal::from_i64(*x).cmp_exact(y),
        (Decimal(x), Int(y)) => x.cmp_exact(&crate::decimal::Decimal::from_i64(*y)),
        (Float(x), Float(y)) => total_f64(*x, *y),
        (Float(x), Int(y)) => total_f64(*x, *y as f64),
        (Int(x), Float(y)) => total_f64(*x as f64, *y),
        (Float(x), Decimal(y)) => total_f64(*x, y.to_f64()),
        (Decimal(x), Float(y)) => total_f64(x.to_f64(), *y),
        _ => return None,
    })
}

fn total_f64(a: f64, b: f64) -> Ordering {
    match a.partial_cmp(&b) {
        Some(o) => o,
        None => {
            // At least one NaN: NaN sorts above every number, NaN == NaN.
            match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => unreachable!("partial_cmp only fails on NaN"),
            }
        }
    }
}

/// Structural (deep) equality: a true equivalence relation over all values,
/// including the absent ones. Used for bag equality, DISTINCT and GROUP BY
/// key identity. NULL ≡ NULL and MISSING ≡ MISSING here (grouping treats
/// "both absent values alike", see DESIGN.md); numbers compare numerically
/// across Int/Float/Decimal; bags compare as multisets; tuples as unordered
/// multisets of (name, value) pairs.
pub fn deep_eq(a: &Value, b: &Value) -> bool {
    use Value::*;
    match (a, b) {
        (Missing, Missing) | (Null, Null) => true,
        (Bool(x), Bool(y)) => x == y,
        (Str(x), Str(y)) => x == y,
        (Bytes(x), Bytes(y)) => x == y,
        (Array(x), Array(y)) => x.len() == y.len() && x.iter().zip(y).all(|(a, b)| deep_eq(a, b)),
        (Bag(x), Bag(y)) => bag_eq(x, y),
        (Tuple(x), Tuple(y)) => tuple_eq(x, y),
        _ if a.is_number() && b.is_number() => compare_numbers(a, b) == Some(Ordering::Equal),
        _ => false,
    }
}

/// Multiset equality: every element of `x` matches a distinct element of
/// `y`. Sorting by the total order first makes this O(n log n) rather than
/// quadratic matching.
fn bag_eq(x: &[Value], y: &[Value]) -> bool {
    if x.len() != y.len() {
        return false;
    }
    let mut xs: Vec<&Value> = x.iter().collect();
    let mut ys: Vec<&Value> = y.iter().collect();
    xs.sort_by(|a, b| total_cmp(a, b));
    ys.sort_by(|a, b| total_cmp(a, b));
    xs.iter().zip(&ys).all(|(a, b)| deep_eq(a, b))
}

/// Unordered tuple equality with duplicate-name support: the pairs of both
/// tuples must match as multisets.
fn tuple_eq(x: &Tuple, y: &Tuple) -> bool {
    if x.len() != y.len() {
        return false;
    }
    let mut used = vec![false; y.len()];
    let ypairs: Vec<(&str, &Value)> = y.iter().collect();
    for (name, value) in x.iter() {
        let mut found = false;
        for (i, (yn, yv)) in ypairs.iter().enumerate() {
            if !used[i] && *yn == name && deep_eq(value, yv) {
                used[i] = true;
                found = true;
                break;
            }
        }
        if !found {
            return false;
        }
    }
    true
}

/// The SQL++ `=` operator (three-valued, §IV-B): MISSING dominates NULL
/// dominates a boolean answer. Values of different non-numeric types are
/// simply unequal (comparing 2 = 'abc' is `false`, not an error — the
/// typing-mode distinction applies to *functions*, and equality is total).
pub fn sql_eq(a: &Value, b: &Value) -> Value {
    if a.is_missing() || b.is_missing() {
        return Value::Missing;
    }
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    Value::Bool(deep_eq(a, b))
}

/// Three-valued ordering comparison used by `<`, `<=`, `>`, `>=`.
///
/// Returns `Missing`/`Null` when an operand is absent, per the propagation
/// rules; returns `None` when the operands are present but not comparable
/// (e.g. `1 < 'a'`) — the evaluator maps that to MISSING in permissive mode
/// or an error in strict mode (§IV-B case 2).
pub fn sql_compare(a: &Value, b: &Value) -> Result<Option<Ordering>, Value> {
    use Value::*;
    if a.is_missing() || b.is_missing() {
        return Err(Value::Missing);
    }
    if a.is_null() || b.is_null() {
        return Err(Value::Null);
    }
    if a.is_number() && b.is_number() {
        return Ok(compare_numbers(a, b));
    }
    Ok(match (a, b) {
        (Bool(x), Bool(y)) => Some(x.cmp(y)),
        (Str(x), Str(y)) => Some(x.cmp(y)),
        (Bytes(x), Bytes(y)) => Some(x.cmp(y)),
        _ => None,
    })
}

fn kind_rank(v: &Value) -> u8 {
    use Value::*;
    match v {
        Missing => 0,
        Null => 1,
        Bool(_) => 2,
        Int(_) | Float(_) | Decimal(_) => 3,
        Str(_) => 4,
        Bytes(_) => 5,
        Array(_) => 6,
        Tuple(_) => 7,
        Bag(_) => 8,
    }
}

/// Total order over *all* values, used by ORDER BY, bag canonicalization,
/// and deterministic test output. Consistent with [`deep_eq`]:
/// `total_cmp(a, b) == Equal ⟺ deep_eq(a, b)`.
pub fn total_cmp(a: &Value, b: &Value) -> Ordering {
    use Value::*;
    let (ra, rb) = (kind_rank(a), kind_rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Missing, Missing) | (Null, Null) => Ordering::Equal,
        (Bool(x), Bool(y)) => x.cmp(y),
        (Str(x), Str(y)) => x.cmp(y),
        (Bytes(x), Bytes(y)) => x.cmp(y),
        (Array(x), Array(y)) => seq_cmp(x, y),
        (Bag(x), Bag(y)) => {
            // Compare canonicalized (sorted) element sequences.
            let mut xs: Vec<&Value> = x.iter().collect();
            let mut ys: Vec<&Value> = y.iter().collect();
            xs.sort_by(|p, q| total_cmp(p, q));
            ys.sort_by(|p, q| total_cmp(p, q));
            for (p, q) in xs.iter().zip(&ys) {
                let o = total_cmp(p, q);
                if o != Ordering::Equal {
                    return o;
                }
            }
            xs.len().cmp(&ys.len())
        }
        (Tuple(x), Tuple(y)) => {
            // Compare pairs sorted by (name, value).
            fn key(t: &crate::tuple::Tuple) -> Vec<(&str, &Value)> {
                let mut pairs: Vec<(&str, &Value)> = t.iter().collect();
                pairs.sort_by(|(an, av), (bn, bv)| an.cmp(bn).then_with(|| total_cmp(av, bv)));
                pairs
            }
            let (xp, yp) = (key(x), key(y));
            for ((an, av), (bn, bv)) in xp.iter().zip(&yp) {
                let o = an.cmp(bn).then_with(|| total_cmp(av, bv));
                if o != Ordering::Equal {
                    return o;
                }
            }
            xp.len().cmp(&yp.len())
        }
        _ if a.is_number() && b.is_number() => compare_numbers(a, b).expect("both numeric"),
        _ => unreachable!("same kind_rank implies same shape"),
    }
}

fn seq_cmp(x: &[Value], y: &[Value]) -> Ordering {
    for (a, b) in x.iter().zip(y) {
        let o = total_cmp(a, b);
        if o != Ordering::Equal {
            return o;
        }
    }
    x.len().cmp(&y.len())
}

/// Convenience: decimal-aware numeric equality used in tests.
pub fn num_eq(a: &Value, b: &Value) -> bool {
    compare_numbers(a, b) == Some(Ordering::Equal)
}

/// Helper for assembling decimals in tests and literals.
pub fn dec(s: &str) -> Decimal {
    s.parse().expect("valid decimal literal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{array, bag, tuple};

    #[test]
    fn sql_eq_three_valued() {
        assert_eq!(sql_eq(&Value::Int(1), &Value::Int(1)), Value::Bool(true));
        assert_eq!(sql_eq(&Value::Int(1), &Value::Int(2)), Value::Bool(false));
        assert_eq!(sql_eq(&Value::Null, &Value::Int(1)), Value::Null);
        assert_eq!(sql_eq(&Value::Null, &Value::Null), Value::Null);
        assert_eq!(sql_eq(&Value::Missing, &Value::Null), Value::Missing);
        assert_eq!(sql_eq(&Value::Missing, &Value::Int(1)), Value::Missing);
    }

    #[test]
    fn eq_across_numeric_types() {
        assert_eq!(
            sql_eq(&Value::Int(2), &Value::Float(2.0)),
            Value::Bool(true)
        );
        assert_eq!(
            sql_eq(&Value::Decimal(dec("2.0")), &Value::Int(2)),
            Value::Bool(true)
        );
        assert_eq!(
            sql_eq(&Value::Decimal(dec("0.1")), &Value::Float(0.1)),
            Value::Bool(true)
        );
    }

    #[test]
    fn eq_on_type_mismatch_is_false_not_error() {
        assert_eq!(
            sql_eq(&Value::Int(2), &Value::Str("2".into())),
            Value::Bool(false)
        );
    }

    #[test]
    fn bag_equality_is_order_insensitive_with_multiplicity() {
        let a = bag![1i64, 2i64, 2i64];
        let b = bag![2i64, 1i64, 2i64];
        let c = bag![1i64, 2i64];
        let d = bag![1i64, 1i64, 2i64];
        assert!(deep_eq(&a, &b));
        assert!(!deep_eq(&a, &c));
        assert!(!deep_eq(&a, &d));
    }

    #[test]
    fn array_equality_is_ordered() {
        assert!(deep_eq(&array![1i64, 2i64], &array![1i64, 2i64]));
        assert!(!deep_eq(&array![1i64, 2i64], &array![2i64, 1i64]));
    }

    #[test]
    fn tuple_equality_is_unordered_and_duplicate_aware() {
        let a = Value::Tuple(tuple! {"x" => 1i64, "y" => 2i64});
        let b = Value::Tuple(tuple! {"y" => 2i64, "x" => 1i64});
        assert!(deep_eq(&a, &b));

        let mut d1 = crate::tuple::Tuple::new();
        d1.insert("x", Value::Int(1));
        d1.insert("x", Value::Int(2));
        let mut d2 = crate::tuple::Tuple::new();
        d2.insert("x", Value::Int(2));
        d2.insert("x", Value::Int(1));
        assert!(deep_eq(&Value::Tuple(d1.clone()), &Value::Tuple(d2)));

        let mut d3 = crate::tuple::Tuple::new();
        d3.insert("x", Value::Int(1));
        d3.insert("x", Value::Int(1));
        assert!(!deep_eq(&Value::Tuple(d1), &Value::Tuple(d3)));
    }

    #[test]
    fn structural_equality_treats_absents_reflexively() {
        assert!(deep_eq(&Value::Null, &Value::Null));
        assert!(deep_eq(&Value::Missing, &Value::Missing));
        assert!(!deep_eq(&Value::Null, &Value::Missing));
        // Nested inside collections too.
        assert!(deep_eq(&bag![Value::Null], &bag![Value::Null]));
    }

    #[test]
    fn total_order_ranks_kinds_per_partiql() {
        let ordered = [
            Value::Missing,
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-5),
            Value::Float(0.5),
            Value::Int(7),
            Value::Str("a".into()),
            Value::Str("b".into()),
            Value::Bytes(vec![0]),
            array![1i64],
            Value::Tuple(tuple! {"a" => 1i64}),
            bag![1i64],
        ];
        for w in ordered.windows(2) {
            assert_eq!(
                total_cmp(&w[0], &w[1]),
                Ordering::Less,
                "{:?} < {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn total_order_consistent_with_deep_eq() {
        let vals = [
            bag![1i64, 2i64],
            bag![2i64, 1i64],
            array![Value::Null],
            Value::Tuple(tuple! {"k" => "v"}),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    total_cmp(a, b) == Ordering::Equal,
                    deep_eq(a, b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn nan_has_a_stable_place_in_the_order() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(total_cmp(&nan, &nan), Ordering::Equal);
        assert_eq!(total_cmp(&Value::Float(1e308), &nan), Ordering::Less);
        assert_eq!(total_cmp(&nan, &Value::Str("s".into())), Ordering::Less);
    }

    #[test]
    fn sql_compare_orders_scalars_and_rejects_mismatches() {
        assert_eq!(
            sql_compare(&Value::Int(1), &Value::Int(2)),
            Ok(Some(Ordering::Less))
        );
        assert_eq!(
            sql_compare(&Value::Str("a".into()), &Value::Str("b".into())),
            Ok(Some(Ordering::Less))
        );
        assert_eq!(
            sql_compare(&Value::Int(1), &Value::Str("a".into())),
            Ok(None)
        );
        assert_eq!(
            sql_compare(&Value::Missing, &Value::Int(1)),
            Err(Value::Missing)
        );
        assert_eq!(sql_compare(&Value::Null, &Value::Int(1)), Err(Value::Null));
    }
}
