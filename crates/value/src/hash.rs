//! Group-key hashing.
//!
//! GROUP BY needs a `HashMap`-compatible key whose equality matches the
//! structural equality of [`crate::cmp::deep_eq`] — in particular NULL and
//! MISSING keys each form a group, numbers compare across Int/Float/Decimal,
//! and bags/tuples hash order-insensitively. [`GroupKey`] wraps one or more
//! values and provides exactly that `Hash`/`Eq` pair.

use std::hash::{Hash, Hasher};

use crate::cmp::{deep_eq, total_cmp};
use crate::value::Value;

/// A hashable wrapper over grouping-key values.
///
/// Grouping treats the two absent values as *distinct singleton groups*
/// unless the caller canonicalizes MISSING to NULL first (the SQL-compat
/// lowering does that so results stay explainable to SQL users — see
/// `sqlpp-plan`).
#[derive(Clone, Debug)]
pub struct GroupKey(pub Vec<Value>);

impl PartialEq for GroupKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| deep_eq(a, b))
    }
}

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            hash_value(v, state);
        }
    }
}

/// Hashes a single value consistently with [`deep_eq`].
pub fn hash_value<H: Hasher>(v: &Value, state: &mut H) {
    match v {
        Value::Missing => state.write_u8(0),
        Value::Null => state.write_u8(1),
        Value::Bool(b) => {
            state.write_u8(2);
            b.hash(state);
        }
        // All numerics hash through a canonical form so Int(2), Float(2.0)
        // and Decimal(2) land in the same bucket, as equality demands.
        Value::Int(_) | Value::Float(_) | Value::Decimal(_) => {
            state.write_u8(3);
            hash_number(v, state);
        }
        Value::Str(s) => {
            state.write_u8(4);
            s.hash(state);
        }
        Value::Bytes(b) => {
            state.write_u8(5);
            b.hash(state);
        }
        Value::Array(items) => {
            state.write_u8(6);
            state.write_usize(items.len());
            for item in items {
                hash_value(item, state);
            }
        }
        Value::Bag(items) => {
            state.write_u8(7);
            state.write_usize(items.len());
            // Order-insensitive: hash elements in canonical (sorted) order.
            let mut sorted: Vec<&Value> = items.iter().collect();
            sorted.sort_by(|a, b| total_cmp(a, b));
            for item in sorted {
                hash_value(item, state);
            }
        }
        Value::Tuple(t) => {
            state.write_u8(8);
            state.write_usize(t.len());
            let mut pairs: Vec<(&str, &Value)> = t.iter().collect();
            pairs.sort_by(|(an, av), (bn, bv)| an.cmp(bn).then_with(|| total_cmp(av, bv)));
            for (name, value) in pairs {
                name.hash(state);
                hash_value(value, state);
            }
        }
    }
}

/// Bound under which every integer is exactly representable as an `f64`,
/// so integral values below it can hash exactly while staying consistent
/// with the (partially `f64`-mediated) numeric equality above it.
const EXACT_F64_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// Canonical numeric hashing: integral values with magnitude `< 2^53` hash
/// as their exact `i128`; everything else hashes as the canonicalized `f64`
/// bit pattern of its numeric value (-0.0 → 0.0, all NaNs unified). The
/// 2^53 split matches where cross-type numeric *equality* becomes
/// `f64`-mediated, keeping `hash` consistent with `deep_eq`.
fn hash_number<H: Hasher>(v: &Value, state: &mut H) {
    let as_small_int: Option<i128> = match v {
        Value::Int(i) => {
            if (i.unsigned_abs() as f64) < EXACT_F64_INT {
                Some(*i as i128)
            } else {
                None
            }
        }
        Value::Decimal(d) => {
            // Normalization guarantees scale > 0 ⇒ non-integral.
            if d.scale() == 0 && (d.mantissa().unsigned_abs() as f64) < EXACT_F64_INT {
                Some(d.mantissa())
            } else {
                None
            }
        }
        Value::Float(f) => {
            if f.is_finite() && f.trunc() == *f && f.abs() < EXACT_F64_INT {
                Some(*f as i128)
            } else {
                None
            }
        }
        _ => unreachable!("hash_number called on non-number"),
    };
    if let Some(i) = as_small_int {
        state.write_u8(0);
        i.hash(state);
        return;
    }
    state.write_u8(1);
    let f = match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        Value::Decimal(d) => d.to_f64(),
        _ => unreachable!(),
    };
    let canon = if f.is_nan() {
        f64::NAN
    } else if f == 0.0 {
        0.0
    } else {
        f
    };
    canon.to_bits().hash(state);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmp::dec;
    use crate::{bag, tuple};
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        hash_value(v, &mut s);
        s.finish()
    }

    #[test]
    fn equal_numbers_hash_equal_across_types() {
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
        assert_eq!(h(&Value::Int(2)), h(&Value::Decimal(dec("2.00"))));
        assert_eq!(h(&Value::Float(0.5)), h(&Value::Decimal(dec("0.5"))));
    }

    #[test]
    fn bags_hash_order_insensitively() {
        assert_eq!(h(&bag![1i64, 2i64, 3i64]), h(&bag![3i64, 1i64, 2i64]));
        assert_ne!(h(&bag![1i64, 2i64]), h(&bag![1i64, 2i64, 2i64]));
    }

    #[test]
    fn tuples_hash_attribute_order_insensitively() {
        let a = Value::Tuple(tuple! {"x" => 1i64, "y" => 2i64});
        let b = Value::Tuple(tuple! {"y" => 2i64, "x" => 1i64});
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn group_key_works_in_hash_map() {
        let mut groups: HashMap<GroupKey, usize> = HashMap::new();
        *groups.entry(GroupKey(vec![Value::Int(1)])).or_default() += 1;
        *groups.entry(GroupKey(vec![Value::Float(1.0)])).or_default() += 1;
        *groups.entry(GroupKey(vec![Value::Null])).or_default() += 1;
        *groups.entry(GroupKey(vec![Value::Null])).or_default() += 1;
        *groups.entry(GroupKey(vec![Value::Missing])).or_default() += 1;
        assert_eq!(groups.len(), 3, "1≡1.0, null group, missing group");
        assert_eq!(groups[&GroupKey(vec![Value::Int(1)])], 2);
        assert_eq!(groups[&GroupKey(vec![Value::Null])], 2);
        assert_eq!(groups[&GroupKey(vec![Value::Missing])], 1);
    }

    #[test]
    fn huge_equal_numbers_hash_consistently_with_equality() {
        // Above 2^53 equality between Int and Float is f64-mediated; the
        // hash must follow suit.
        let i = Value::Int(1 << 60);
        let f = Value::Float((1u64 << 60) as f64);
        assert!(crate::cmp::deep_eq(&i, &f));
        assert_eq!(h(&i), h(&f));
    }

    #[test]
    fn negative_zero_and_nan_are_canonicalized() {
        assert_eq!(h(&Value::Float(0.0)), h(&Value::Float(-0.0)));
        let nan1 = f64::NAN;
        let nan2 = f64::from_bits(f64::NAN.to_bits() | 1);
        assert_eq!(h(&Value::Float(nan1)), h(&Value::Float(nan2)));
    }
}
