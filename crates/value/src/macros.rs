//! Construction macros mirroring the paper's notation: `bag![…]` for
//! `{{ … }}`, `array![…]` for `[ … ]`, and `tuple! { "k" => v }` for
//! `{ 'k': v }`.

/// Builds a [`crate::Value::Bag`] from expressions convertible to `Value`.
///
/// ```
/// use sqlpp_value::{bag, Value};
/// let b = bag![1i64, "two", Value::Null];
/// assert_eq!(b.to_string(), "{{1, 'two', null}}");
/// ```
#[macro_export]
macro_rules! bag {
    () => { $crate::Value::Bag(Vec::new()) };
    ($($elem:expr),+ $(,)?) => {
        $crate::Value::Bag(vec![$($crate::Value::from($elem)),+])
    };
}

/// Builds a [`crate::Value::Array`] from expressions convertible to `Value`.
///
/// ```
/// use sqlpp_value::array;
/// assert_eq!(array![1i64, 2i64].to_string(), "[1, 2]");
/// ```
#[macro_export]
macro_rules! array {
    () => { $crate::Value::Array(Vec::new()) };
    ($($elem:expr),+ $(,)?) => {
        $crate::Value::Array(vec![$($crate::Value::from($elem)),+])
    };
}

/// Builds a [`crate::Tuple`] from `"name" => value` pairs. MISSING values
/// are dropped, per the data model's construction rule.
///
/// ```
/// use sqlpp_value::{tuple, Value};
/// let t = tuple! { "id" => 3i64, "title" => Value::Null };
/// assert_eq!(Value::Tuple(t).to_string(), "{'id': 3, 'title': null}");
/// ```
#[macro_export]
macro_rules! tuple {
    () => { $crate::Tuple::new() };
    ($($name:expr => $value:expr),+ $(,)?) => {{
        let mut t = $crate::Tuple::new();
        $( t.insert($name, $crate::Value::from($value)); )+
        t
    }};
}

/// Shorthand for a bag of tuples — the shape of every "collection of
/// documents" in the paper's examples.
///
/// ```
/// use sqlpp_value::rows;
/// let r = rows![ {"id" => 1i64}, {"id" => 2i64} ];
/// assert_eq!(r.to_string(), "{{{'id': 1}, {'id': 2}}}");
/// ```
#[macro_export]
macro_rules! rows {
    ($({$($name:expr => $value:expr),* $(,)?}),* $(,)?) => {
        $crate::Value::Bag(vec![
            $( $crate::Value::Tuple($crate::tuple! { $($name => $value),* }) ),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn bag_and_array_macros() {
        assert_eq!(bag![], Value::Bag(vec![]));
        assert_eq!(array![], Value::Array(vec![]));
        assert_eq!(bag![1i64, 2i64].as_elements().unwrap().len(), 2);
    }

    #[test]
    fn tuple_macro_drops_missing() {
        let t = tuple! { "a" => 1i64, "b" => Value::Missing };
        assert_eq!(t.len(), 1);
        assert!(t.contains("a"));
    }

    #[test]
    fn rows_macro_builds_bag_of_tuples() {
        let r = rows![ {"x" => 1i64}, {"x" => 2i64, "y" => "z"} ];
        let elems = r.as_elements().unwrap();
        assert_eq!(elems.len(), 2);
        assert!(matches!(elems[0], Value::Tuple(_)));
    }
}
