//! The engine's durability surface: opening with recovery, logged
//! publishes, checkpoints, and one-shot snapshot import/export.
//!
//! The crash-safety protocol (DESIGN.md §5.13) in one paragraph: every
//! publish that must survive a crash appends a WAL record *before* the
//! catalog exposes the new state, and both steps happen under the
//! catalog's [`dml_guard`](sqlpp_catalog::Catalog::dml_guard) — the same
//! mutex DML statements already hold across their read-modify-write.
//! That single serialization point is what makes checkpoints sound:
//! [`Engine::checkpoint`] takes the guard, so the image it captures
//! reflects exactly the records appended so far (never a record whose
//! publish is still in flight), and the WAL truncation that follows can
//! never discard a record the snapshot missed.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sqlpp_durability::{
    read_snapshot, write_snapshot, CatalogImage, DurabilityConfig, DurableStore, Recovered,
    Snapshot, WalStatus,
};
use sqlpp_schema::SqlppType;
use sqlpp_value::Value;

use crate::error::Result;
use crate::{Catalog, Engine, SessionConfig};

impl Engine {
    /// Opens an engine from a [`SessionConfig`]. With
    /// `config.durability` set, this opens (or creates) the durability
    /// directory, runs recovery — newest valid snapshot, then WAL tail
    /// replay, torn final record truncated — and installs the recovered
    /// catalog; without it, this is exactly [`Engine::new`] with the
    /// given config.
    pub fn open(config: SessionConfig) -> Result<Engine> {
        let Some(durability) = config.durability.clone() else {
            return Ok(Engine {
                catalog: Catalog::default(),
                config,
                wal: None,
            });
        };
        let (store, recovered) = DurableStore::open(durability)?;
        let catalog = Catalog::default();
        install(&catalog, &recovered.image);
        Ok(Engine {
            catalog,
            config,
            wal: Some(Arc::new(store)),
        })
    }

    /// Opens a durable engine over `dir` with otherwise-default
    /// configuration (sync mode `Always`: an acknowledged commit is on
    /// disk before it is visible).
    pub fn open_durable(dir: impl Into<PathBuf>) -> Result<Engine> {
        Engine::open(SessionConfig {
            durability: Some(DurabilityConfig::new(dir.into())),
            ..SessionConfig::default()
        })
    }

    /// Like [`Engine::open`], additionally returning what recovery
    /// reconstructed (snapshot LSN, records replayed, torn-tail report).
    pub fn open_with_recovery(config: SessionConfig) -> Result<(Engine, Recovered)> {
        let Some(durability) = config.durability.clone() else {
            let engine = Engine::open(config)?;
            return Ok((engine, Recovered::default()));
        };
        let (store, recovered) = DurableStore::open(durability)?;
        let catalog = Catalog::default();
        install(&catalog, &recovered.image);
        Ok((
            Engine {
                catalog,
                config,
                wal: Some(Arc::new(store)),
            },
            recovered,
        ))
    }

    /// Whether this engine writes a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The shared WAL store, for sessions that need direct access (the
    /// server's shutdown checkpoint, status displays).
    pub(crate) fn wal(&self) -> Option<&Arc<DurableStore>> {
        self.wal.as_ref()
    }

    /// Current WAL counters, or `None` on an in-memory engine.
    pub fn wal_status(&self) -> Option<WalStatus> {
        self.wal.as_ref().map(|w| w.status())
    }

    /// Takes a checkpoint: captures the full catalog under the DML
    /// guard, writes it as an atomic snapshot, and truncates the WAL.
    /// Returns the covered LSN, or `None` on an in-memory engine.
    pub fn checkpoint(&self) -> Result<Option<u64>> {
        let Some(wal) = &self.wal else {
            return Ok(None);
        };
        // Lock order everywhere: dml_guard → wal inner lock. Holding the
        // guard means no statement is between its WAL append and its
        // catalog publish, so the image matches the log exactly.
        let _writers = self.catalog.dml_guard();
        let image = self.capture_image();
        Ok(Some(wal.checkpoint(&image)?))
    }

    /// Exports the catalog as a one-shot snapshot file (the REPL's
    /// `.save`). Works on in-memory engines too — the file is a
    /// standalone archive, not tied to any durability directory.
    pub fn save_snapshot(&self, path: &Path) -> Result<()> {
        let _writers = self.catalog.dml_guard();
        let lsn = self.wal.as_ref().map_or(0, |w| w.status().last_lsn);
        let snap = Snapshot {
            lsn,
            image: self.capture_image(),
        };
        write_snapshot(path, &snap, true)?;
        Ok(())
    }

    /// Imports a snapshot file into this engine's catalog (the REPL's
    /// `.open`), overwriting same-named bindings. On a durable engine
    /// every imported binding is WAL-logged, so the import itself is
    /// crash-safe. Returns the number of bindings imported.
    pub fn load_snapshot(&self, path: &Path) -> Result<usize> {
        let snap = read_snapshot(path)?;
        let mut schemas: HashMap<String, SqlppType> = snap.image.schemas.into_iter().collect();
        let mut imported = 0usize;
        for (name, value) in snap.image.values {
            let schema = schemas.remove(&name);
            self.put_logged(&name, value, schema.as_ref())?;
            imported += 1;
        }
        // Schema attachments without a current value (legal: a schema
        // can outlive its collection's removal).
        for (name, ty) in schemas {
            let _writers = self.catalog.dml_guard();
            if let Some(wal) = &self.wal {
                wal.append_schema(&name, &ty)?;
            }
            self.catalog.set_schema(name.as_str(), ty);
            imported += 1;
        }
        Ok(imported)
    }

    /// The logged publish every fallible loading path funnels through:
    /// appends the WAL record (value alone, or value + schema as one
    /// atomic record), then publishes to the catalog — all under the DML
    /// guard. On an in-memory engine this is just the publish.
    pub(crate) fn put_logged(
        &self,
        name: &str,
        value: Value,
        schema: Option<&SqlppType>,
    ) -> Result<()> {
        let _writers = self.catalog.dml_guard();
        if let Some(wal) = &self.wal {
            match schema {
                Some(ty) => wal.append_commit_with_schema(name, &value, ty)?,
                None => wal.append_commit(name, &value)?,
            };
        }
        self.catalog.set(name, value);
        if let Some(ty) = schema {
            self.catalog.set_schema(name, ty.clone());
        }
        Ok(())
    }

    /// Captures the full catalog as an image. Callers that need the
    /// image consistent with the WAL hold the DML guard across the
    /// capture (see [`Engine::checkpoint`]).
    pub(crate) fn capture_image(&self) -> CatalogImage {
        let mut values = Vec::new();
        for name in self.catalog.names() {
            if let Ok(v) = self.catalog.get(&name) {
                values.push((name.to_string(), (*v).clone()));
            }
        }
        let (schema_epoch, schemas) = self.catalog.schema_state();
        CatalogImage {
            values,
            schemas,
            schema_epoch,
        }
    }
}

/// Installs a recovered image into a fresh catalog.
fn install(catalog: &Catalog, image: &CatalogImage) {
    for (name, value) in &image.values {
        catalog.set(name.as_str(), value.clone());
    }
    for (name, ty) in &image.schemas {
        catalog.set_schema(name.as_str(), ty.clone());
    }
    // `set_schema` bumped the epoch per attachment; raise it the rest of
    // the way so pre-crash epochs can never collide with current ones.
    catalog.advance_schema_epoch_to(image.schema_epoch);
}
