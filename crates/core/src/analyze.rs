//! Static analysis: bridging engine errors into front-end diagnostics.
//!
//! The front end produces spanned [`Diagnostic`]s natively; the semantic
//! layers (planning, typechecking, evaluation) do not, because the AST
//! carries no spans. Where those layers tag an error with the offending
//! *identifier* ([`sqlpp_plan::PlanError::name`], typecheck warnings),
//! this module locates the first occurrence of that name in the token
//! stream and attaches its span — good enough for caret reports without
//! threading spans through every IR.

use sqlpp_syntax::diag::codes;
use sqlpp_syntax::token::{Span, Tok};
use sqlpp_syntax::Diagnostic;

use crate::{Error, EvalError};

/// A zero-width span for errors with no locatable source position.
pub(crate) fn zero_span() -> Span {
    Span {
        start: 0,
        end: 0,
        line: 1,
        column: 1,
    }
}

/// Locates the first token spelling `name` as an identifier (plain or
/// delimited), so semantic errors about a name can point at it.
pub(crate) fn locate_name(src: &str, name: &str) -> Option<Span> {
    let (tokens, _) = sqlpp_syntax::lex_recovering(src);
    tokens.iter().find_map(|t| match &t.tok {
        Tok::Ident(s) | Tok::QuotedIdent(s) if s == name => Some(t.span),
        _ => None,
    })
}

/// Converts an engine [`Error`] into structured diagnostics against the
/// query text it arose from. Returns an empty vector for error families
/// with no useful source attribution (I/O, schema validation, resource
/// exhaustion, …) — callers fall back to the plain [`Display`] form.
///
/// [`Display`]: std::fmt::Display
pub fn diagnostics_for(src: &str, err: &Error) -> Vec<Diagnostic> {
    match err {
        Error::Syntax(e) => {
            // The strict error is the *first* of possibly several;
            // re-parse in recovering mode to report all of them.
            let rec = sqlpp_syntax::parse_statement_recovering(src);
            if rec.diags.is_empty() {
                vec![e.diagnostic().clone()]
            } else {
                rec.diags
            }
        }
        Error::Plan(pe) => {
            let span = pe
                .name()
                .and_then(|n| locate_name(src, n))
                .unwrap_or_else(zero_span);
            vec![Diagnostic::new(pe.code(), pe.message(), span)]
        }
        Error::Eval(e @ (EvalError::UnknownName(n) | EvalError::UnknownFunction(n))) => {
            let span = locate_name(src, n).unwrap_or_else(zero_span);
            vec![Diagnostic::new(codes::E_NAME, e.to_string(), span)]
        }
        _ => Vec::new(),
    }
}

/// Renders an engine error as a caret-underlined multi-error report when
/// diagnostics are available, or as a plain one-liner otherwise. The
/// REPL's and compat runner's error path.
pub fn render_error_report(src: &str, err: &Error) -> String {
    let diags = diagnostics_for(src, err);
    if diags.is_empty() {
        format!("error: {err}\n")
    } else {
        sqlpp_syntax::render_report(src, &diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;

    #[test]
    fn locate_name_finds_the_first_identifier() {
        let span = locate_name("SELECT e.bogus FROM emp AS e", "bogus").unwrap();
        assert_eq!(
            &"SELECT e.bogus FROM emp AS e"[span.start..span.end],
            "bogus"
        );
    }

    #[test]
    fn locate_name_misses_keywords_and_strings() {
        assert!(locate_name("SELECT 'bogus' FROM t AS t", "bogus").is_none());
        assert!(locate_name("SELECT 1", "SELECT").is_none());
    }

    #[test]
    fn syntax_errors_expand_to_the_full_recovering_report() {
        let engine = Engine::new();
        let src = "SELECT 1 + FROM t AS t WHERE ORDER BY";
        let err = engine.query(src).unwrap_err();
        let diags = diagnostics_for(src, &err);
        assert!(diags.len() >= 3, "{diags:?}");
        let report = render_error_report(src, &err);
        assert!(report.contains("errors found"), "{report}");
    }

    #[test]
    fn unknown_names_point_at_their_source_token() {
        let engine = Engine::new();
        let src = "SELECT VALUE x FROM nowhere AS x";
        let err = engine.query(src).unwrap_err();
        let diags = diagnostics_for(src, &err);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::E_NAME);
        assert_eq!(&src[diags[0].span.start..diags[0].span.end], "nowhere");
    }
}
