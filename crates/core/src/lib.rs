//! # sqlpp — a SQL++ query engine
//!
//! A complete, from-scratch Rust implementation of the unified SQL++
//! language of *SQL++: We Can Finally Relax!* (Carey, Chamberlin, Goo,
//! Ong, Papakonstantinou, Suver, Vemulapalli, Westmann — ICDE 2024):
//! SQL relaxed from flat to nested object structure and from mandatory to
//! optional schema.
//!
//! ```
//! use sqlpp::Engine;
//!
//! let engine = Engine::new();
//! // Load the paper's Listing 1 collection from its own notation:
//! engine.load_pnotation("hr.emp_nest_tuples", r#"{{
//!     {'id': 3, 'name': 'Bob Smith', 'title': null,
//!      'projects': [{'name': 'Serverless Query'},
//!                   {'name': 'OLAP Security'},
//!                   {'name': 'OLTP Security'}]},
//!     {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
//!     {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
//!      'projects': [{'name': 'OLTP Security'}]}
//! }}"#).unwrap();
//!
//! // Listing 2: unnest the projects with a left-correlated FROM.
//! let result = engine.query(
//!     "SELECT e.name AS emp_name, p.name AS proj_name \
//!      FROM hr.emp_nest_tuples AS e, e.projects AS p \
//!      WHERE p.name LIKE '%Security%'",
//! ).unwrap();
//! assert_eq!(result.len(), 3);
//! ```
//!
//! The engine exposes the paper's two dials:
//!
//! * [`CompatMode`] — "a SQL compatibility flag in SQL++ whose setting
//!   can be toggled between prioritizing composability or prioritizing
//!   SQL compatibility" (§I);
//! * [`TypingMode`] — permissive (type errors become MISSING and healthy
//!   data keeps flowing, §IV) vs stop-on-error.

#![warn(missing_docs)]

mod analyze;
mod dml;
mod error;
mod persist;
mod result;

use std::sync::{Arc, RwLock};
use std::time::Instant;

use sqlpp_catalog::QualifiedName;
use sqlpp_eval::stats::fmt_ns;
use sqlpp_eval::{EvalConfig, Evaluator};
use sqlpp_formats::csv::CsvOptions;
use sqlpp_plan::{lower_query, optimize, CoreOp, CoreQuery, PlanConfig};
use sqlpp_schema::{SqlppType, Validator};
use sqlpp_syntax::ast::Statement;
use sqlpp_value::Value;

pub use analyze::{diagnostics_for, render_error_report};
pub use error::{Error, Result};
pub use result::QueryResult;
pub use sqlpp_catalog::Catalog;
pub use sqlpp_durability::{
    DurabilityConfig, DurabilityError, DurableStore, Recovered, SyncMode, WalStatus,
};
pub use sqlpp_eval::{
    CancelToken, EvalError, ExecStats, FaultInjector, FaultSite, Limits, OpStats, SpillConfig,
    TypingMode,
};
pub use sqlpp_plan::CompatMode;
pub use sqlpp_syntax::{render_report, Diagnostic};
pub use sqlpp_value as value;
pub use sqlpp_value::{Decimal, Tuple};

/// Session-level configuration: the paper's mode dials plus engine knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// SQL compatibility vs composability (§I).
    pub compat: CompatMode,
    /// Permissive vs stop-on-error typing (§IV).
    pub typing: TypingMode,
    /// Run the plan optimizer.
    pub optimize: bool,
    /// Use the pipelined-aggregation fast path (§V-C).
    pub pipeline_aggregates: bool,
    /// Per-query resource limits (memory budget, deadline, cancellation,
    /// nesting depth) applied to every query and DML evaluation this
    /// session runs. Unlimited by default; enforcement is zero-cost when
    /// unlimited (gated like stats collection).
    pub limits: Limits,
    /// Fault-injection hook (chaos testing). `None` in production.
    pub fault: Option<FaultInjector>,
    /// Rows moved per pipeline pull (vectorized execution). `1` forces
    /// the row-at-a-time path everywhere — useful as a differential
    /// baseline against the batched engine.
    pub batch_size: usize,
    /// Compile expressions to flat bytecode at plan time. Off, every
    /// expression goes through the tree-walking interpreter.
    pub compile_exprs: bool,
    /// Out-of-core execution policy. `None` (the default) keeps memory-
    /// budget overruns as hard refusals; `Some` lets pipeline breakers
    /// spill to temp files (external merge-sort, Grace partitioning)
    /// within the session's [`Limits::spill_bytes`] cap.
    pub spill: Option<SpillConfig>,
    /// Crash-safe persistence. `None` (the default) keeps the catalog
    /// purely in memory, exactly as before; `Some` opens a write-ahead
    /// log + checkpoint directory via [`Engine::open`] — every committed
    /// DML statement and schema change is logged before it publishes,
    /// and recovery on the next open replays the catalog back.
    pub durability: Option<DurabilityConfig>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            compat: CompatMode::SqlCompat,
            typing: TypingMode::Permissive,
            optimize: true,
            pipeline_aggregates: true,
            limits: Limits::default(),
            fault: None,
            batch_size: sqlpp_eval::DEFAULT_BATCH_SIZE,
            compile_exprs: true,
            spill: None,
            durability: None,
        }
    }
}

/// The SQL++ engine: a catalog of named values plus a configuration.
///
/// Cloning an `Engine` shares the catalog (sessions over one database);
/// use [`Engine::with_config`] to derive differently-configured sessions.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    catalog: Catalog,
    config: SessionConfig,
    /// The shared write-ahead log, when this engine was opened durable.
    /// Cloned engines and derived sessions share it with the catalog —
    /// one log per database, whatever the session topology.
    wal: Option<Arc<DurableStore>>,
}

impl Engine {
    /// A fresh engine with an empty catalog and default configuration
    /// (in-memory: no durability).
    pub fn new() -> Self {
        Engine::default()
    }

    /// Derives a session with different configuration over the *same*
    /// catalog (and the same write-ahead log, if one is open — the
    /// `durability` field of `config` is ignored in favor of this
    /// engine's, since sessions over one catalog must share one log).
    pub fn with_config(&self, config: SessionConfig) -> Engine {
        Engine {
            catalog: self.catalog.clone(),
            wal: self.wal.clone(),
            config: SessionConfig {
                durability: self.config.durability.clone(),
                ..config
            },
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The active configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    // ---------------- data loading ----------------

    /// Binds a name to an in-memory value.
    ///
    /// Deliberately *not* written to the write-ahead log (it is the one
    /// infallible loading path, kept infallible): on a durable engine
    /// the binding lives in memory until the next [`Engine::checkpoint`]
    /// folds it into a snapshot. Use [`Engine::load_pnotation`] (or any
    /// fallible loader) for crash-safe registration.
    pub fn register(&self, name: &str, value: Value) {
        self.catalog.set(name, value);
    }

    /// Loads a collection from the paper's object notation.
    pub fn load_pnotation(&self, name: &str, text: &str) -> Result<()> {
        let v = sqlpp_formats::pnotation::from_pnotation(text)?;
        self.put_logged(name, v, None)
    }

    /// Loads a collection from a JSON document (or JSON Lines stream).
    pub fn load_json(&self, name: &str, text: &str) -> Result<()> {
        let trimmed = text.trim_start();
        let v = if trimmed.starts_with('[') || trimmed.starts_with('{') {
            match sqlpp_formats::json::from_json(text) {
                Ok(v) => v,
                // Concatenated objects: fall back to JSON Lines.
                Err(_) => sqlpp_formats::json::from_json_lines(text)?,
            }
        } else {
            sqlpp_formats::json::from_json_lines(text)?
        };
        self.put_logged(name, v, None)
    }

    /// Loads a collection from CSV text.
    pub fn load_csv(&self, name: &str, text: &str) -> Result<()> {
        let v = sqlpp_formats::csv::from_csv(text, &CsvOptions::default())?;
        self.put_logged(name, v, None)
    }

    /// Loads a collection from ion-lite bytes.
    pub fn load_ion_lite(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let v = sqlpp_formats::ion_lite::from_ion_lite(bytes)?;
        self.put_logged(name, v, None)
    }

    /// Registers a value after validating every element against an
    /// optional schema (the paper's schema-optional tenet: data may be
    /// validated when a schema exists, and queries must not change).
    pub fn register_with_schema(
        &self,
        name: &str,
        value: Value,
        element_type: &SqlppType,
    ) -> Result<()> {
        let validator = Validator::new(element_type.clone());
        let violations = validator.validate(&value);
        if let Some(v) = violations.first() {
            return Err(Error::Schema(format!(
                "{name}: {} violation(s); first: {}",
                violations.len(),
                v.message
            )));
        }
        // Value + schema publish (and log) as one unit: queries over
        // this collection gain §III schema-based disambiguation of bare
        // identifiers, and a recovered catalog can never see one
        // without the other.
        self.put_logged(name, value, Some(element_type))
    }

    // ---------------- statements and queries ----------------

    /// Executes a statement: queries return rows, `CREATE TABLE`
    /// registers an empty (schema-attached) collection, and
    /// INSERT/DELETE/UPDATE mutate named collections (re-validating
    /// against any attached schema).
    pub fn execute(&self, src: &str) -> Result<ExecOutcome> {
        let parse_start = Instant::now();
        let parsed = sqlpp_syntax::parse_statement(src)?;
        let parse_ns = parse_start.elapsed().as_nanos() as u64;
        match parsed {
            Statement::Query(_) => Ok(ExecOutcome::Rows(self.query(src)?)),
            Statement::Explain { analyze, query } => {
                let text = if analyze {
                    let (core, _value, stats) = self.run_ast_with_stats(&query, parse_ns)?;
                    render_analysis(&core, &stats)
                } else {
                    let (core, _, _) = self.lower_timed(&query)?;
                    core.explain()
                };
                Ok(ExecOutcome::Explained { text })
            }
            Statement::CreateTable(ct) => {
                let ty = sqlpp_schema::hive::table_row_type(&ct);
                let name = ct.name.join(".");
                self.put_logged(name.as_str(), Value::empty_bag(), Some(&ty))?;
                Ok(ExecOutcome::Created { name, row_type: ty })
            }
            Statement::Insert(ins) => Ok(ExecOutcome::Inserted {
                count: self.exec_insert(&ins, false)?.0,
            }),
            Statement::Delete(del) => Ok(ExecOutcome::Deleted {
                count: self.exec_delete(&del, false)?.0,
            }),
            Statement::Update(up) => Ok(ExecOutcome::Updated {
                count: self.exec_update(&up, false)?.0,
            }),
        }
    }

    /// Like [`Engine::execute`], with statistics collection on: queries
    /// and DML statements return their [`ExecStats`] (phase times plus
    /// operator counters — for DML, the counters cover the statement's
    /// embedded query/predicate evaluation). Statements with no
    /// evaluation of their own (`CREATE TABLE`, `EXPLAIN`) return `None`.
    pub fn execute_with_stats(&self, src: &str) -> Result<(ExecOutcome, Option<ExecStats>)> {
        let parse_start = Instant::now();
        let parsed = sqlpp_syntax::parse_statement(src)?;
        let parse_ns = parse_start.elapsed().as_nanos() as u64;
        let finish = |mut stats: Option<ExecStats>, eval_ns: u64| {
            if let Some(st) = &mut stats {
                st.parse_ns = parse_ns;
                st.eval_ns = eval_ns;
            }
            stats
        };
        match parsed {
            Statement::Query(q) => {
                let (_core, value, stats) = self.run_ast_with_stats(&q, parse_ns)?;
                Ok((ExecOutcome::Rows(QueryResult::new(value)), Some(stats)))
            }
            Statement::Insert(ins) => {
                let t = Instant::now();
                let (count, stats) = self.exec_insert(&ins, true)?;
                let eval_ns = t.elapsed().as_nanos() as u64;
                Ok((ExecOutcome::Inserted { count }, finish(stats, eval_ns)))
            }
            Statement::Delete(del) => {
                let t = Instant::now();
                let (count, stats) = self.exec_delete(&del, true)?;
                let eval_ns = t.elapsed().as_nanos() as u64;
                Ok((ExecOutcome::Deleted { count }, finish(stats, eval_ns)))
            }
            Statement::Update(up) => {
                let t = Instant::now();
                let (count, stats) = self.exec_update(&up, true)?;
                let eval_ns = t.elapsed().as_nanos() as u64;
                Ok((ExecOutcome::Updated { count }, finish(stats, eval_ns)))
            }
            // No evaluation of their own: run the plain path.
            Statement::CreateTable(_) | Statement::Explain { .. } => Ok((self.execute(src)?, None)),
        }
    }

    /// Parses, plans, and runs a query.
    pub fn query(&self, src: &str) -> Result<QueryResult> {
        self.query_with_params(src, Vec::new())
    }

    /// Like [`Engine::query`], with positional `?` parameters.
    pub fn query_with_params(&self, src: &str, params: Vec<Value>) -> Result<QueryResult> {
        let prepared = self.prepare(src)?;
        prepared.execute_with_params(self, params)
    }

    /// Parses and lowers a query once for repeated execution.
    ///
    /// The returned plan is stamped with the catalog's *schema epoch* at
    /// prepare time. Execution revalidates the stamp: if a schema was
    /// attached, replaced, or removed since (`register_with_schema`,
    /// `CREATE TABLE`, `Catalog::set_schema`/`remove`), the plan is
    /// re-lowered against the current catalog before running, so a
    /// `Prepared` never executes against a schema snapshot older than the
    /// data it reads.
    pub fn prepare(&self, src: &str) -> Result<Prepared> {
        let ast = sqlpp_syntax::parse_query(src)?;
        let (epoch, schemas) = self.catalog.schema_state();
        let config = PlanConfig {
            compat: self.config.compat,
            schemas,
        };
        let mut core = lower_query(&ast, &config)?;
        if self.config.optimize {
            core = optimize(core);
        }
        Ok(Prepared {
            ast,
            compat: self.config.compat,
            optimize: self.config.optimize,
            epoch,
            core: Arc::new(core),
            refreshed: Arc::new(RwLock::new(None)),
        })
    }

    /// Lowers (and optionally optimizes) a parsed query, timing each
    /// phase for [`ExecStats`].
    fn lower_timed(&self, ast: &sqlpp_syntax::ast::Query) -> Result<(CoreQuery, u64, u64)> {
        let config = PlanConfig {
            compat: self.config.compat,
            schemas: self.catalog.schema_snapshot(),
        };
        let t = Instant::now();
        let mut core = lower_query(ast, &config)?;
        let lower_ns = t.elapsed().as_nanos() as u64;
        let mut optimize_ns = 0;
        if self.config.optimize {
            let t = Instant::now();
            core = optimize(core);
            optimize_ns = t.elapsed().as_nanos() as u64;
        }
        Ok((core, lower_ns, optimize_ns))
    }

    /// The lowered (Core) plan as text — SQL's EXPLAIN, and the mechanism
    /// by which the listing gallery shows the §V-C rewritings.
    pub fn explain(&self, src: &str) -> Result<String> {
        Ok(self.prepare(src)?.core.explain())
    }

    /// Runs a query with statistics collection on and returns its result
    /// with [`ExecStats`] attached (per-phase wall times plus operator
    /// counters). The ordinary [`Engine::query`] path carries no
    /// collector and pays nothing.
    pub fn query_with_stats(&self, src: &str) -> Result<QueryResult> {
        let (_core, value, stats) = self.run_with_stats(src)?;
        Ok(QueryResult::with_stats(value, stats))
    }

    /// `EXPLAIN ANALYZE`: executes the query with statistics collection
    /// on and renders the Core operator tree with each operator's
    /// calls/rows/time, followed by the phase-times and counters summary.
    pub fn explain_analyze(&self, src: &str) -> Result<String> {
        let (core, _value, stats) = self.run_with_stats(src)?;
        Ok(render_analysis(&core, &stats))
    }

    fn run_with_stats(&self, src: &str) -> Result<(CoreQuery, Value, ExecStats)> {
        let t = Instant::now();
        let ast = sqlpp_syntax::parse_query(src)?;
        let parse_ns = t.elapsed().as_nanos() as u64;
        self.run_ast_with_stats(&ast, parse_ns)
    }

    fn run_ast_with_stats(
        &self,
        ast: &sqlpp_syntax::ast::Query,
        parse_ns: u64,
    ) -> Result<(CoreQuery, Value, ExecStats)> {
        // Per-operator stats are keyed by the plan's pre-order index
        // (assigned by `Evaluator::run`), so the plan can move freely
        // between evaluation and annotation.
        let (core, lower_ns, optimize_ns) = self.lower_timed(ast)?;
        let evaluator = Evaluator::new(
            &self.catalog,
            EvalConfig {
                collect_stats: true,
                ..self.eval_config()
            },
        );
        let t = Instant::now();
        let value = evaluator.run(&core)?;
        let eval_ns = t.elapsed().as_nanos() as u64;
        let mut stats = evaluator.stats_snapshot().expect("collect_stats is on");
        stats.parse_ns = parse_ns;
        stats.lower_ns = lower_ns;
        stats.optimize_ns = optimize_ns;
        stats.eval_ns = eval_ns;
        Ok((core, value, stats))
    }

    /// Statically analyzes a statement without evaluating it, returning
    /// every problem found as a spanned [`Diagnostic`].
    ///
    /// Three layers feed the report: the *recovering* parser contributes
    /// all syntax errors in one pass (not just the first), lowering
    /// contributes name-resolution and clause-legality errors
    /// (`E_PLAN`), and — when the parse and plan are clean — the
    /// typechecker contributes advisory `W_TYPE` warnings against the
    /// catalog's attached schemas (§I: "the possibility of static type
    /// checking when the optional schema is present"). Typecheck
    /// warnings never reject a query, since schemaless data is legal by
    /// design. An empty vector means the statement is clean.
    pub fn check(&self, src: &str) -> Vec<Diagnostic> {
        let rec = sqlpp_syntax::parse_statement_recovering(src);
        if !rec.diags.is_empty() {
            // Bare expressions are legal engine input (`run_str` accepts
            // them); only report the statement-shaped errors if the
            // expression reading fails too.
            let expr = sqlpp_syntax::parse_expr_recovering(src);
            if expr.diags.is_empty() {
                if let Some(e) = expr.ast {
                    return self.check_expr_ast(src, e);
                }
            }
            return rec.diags;
        }
        match rec.ast {
            Some(Statement::Query(q)) => self.check_query_ast(src, &q),
            Some(Statement::Explain { query, .. }) => self.check_query_ast(src, &query),
            // DDL/DML statements carry no plan to lower; a clean parse is
            // all the static analysis they get today.
            _ => Vec::new(),
        }
    }

    /// Lowers and typechecks a parsed query for [`Engine::check`].
    fn check_query_ast(&self, src: &str, ast: &sqlpp_syntax::ast::Query) -> Vec<Diagnostic> {
        match self.lower_timed(ast) {
            Ok((core, _, _)) => sqlpp_plan::typecheck(&core, &self.catalog.schema_snapshot())
                .into_iter()
                .map(|w| {
                    let span = w
                        .name
                        .as_deref()
                        .and_then(|n| analyze::locate_name(src, n))
                        .unwrap_or_else(analyze::zero_span);
                    Diagnostic::new(sqlpp_syntax::diag::codes::W_TYPE, w.message, span)
                })
                .collect(),
            Err(e) => analyze::diagnostics_for(src, &e),
        }
    }

    /// [`Engine::check`] for a bare expression: wraps it in the same
    /// `SELECT VALUE` shell [`Engine::eval_expr`] uses and analyzes that.
    fn check_expr_ast(&self, src: &str, expr: sqlpp_syntax::ast::Expr) -> Vec<Diagnostic> {
        use sqlpp_syntax::ast::{Query, QueryBlock, SelectClause, SetExpr, SetQuantifier};
        let block = QueryBlock::with_select(SelectClause::SelectValue {
            quantifier: SetQuantifier::All,
            expr,
        });
        let q = Query {
            ctes: Vec::new(),
            body: SetExpr::Block(Box::new(block)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        };
        self.check_query_ast(src, &q)
    }

    /// Evaluates a standalone SQL++ *expression* (full composability:
    /// "subqueries can appear anywhere", and so can bare constructors like
    /// Listing 16's `{{ {'avgsal': COLL_AVG(SELECT VALUE …)} }}`).
    pub fn eval_expr(&self, src: &str) -> Result<Value> {
        Ok(self.eval_expr_with(src, false)?.0)
    }

    /// [`Engine::eval_expr`] with optional statistics collection (used by
    /// DML under [`Engine::execute_with_stats`]).
    pub(crate) fn eval_expr_with(
        &self,
        src: &str,
        collect_stats: bool,
    ) -> Result<(Value, Option<ExecStats>)> {
        use sqlpp_syntax::ast::{Query, QueryBlock, SelectClause, SetExpr, SetQuantifier};
        let expr = sqlpp_syntax::parse_expr(src)?;
        let block = QueryBlock::with_select(SelectClause::SelectValue {
            quantifier: SetQuantifier::All,
            expr,
        });
        let q = Query {
            ctes: Vec::new(),
            body: SetExpr::Block(Box::new(block)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        };
        let config = PlanConfig {
            compat: self.config.compat,
            schemas: self.catalog.schema_snapshot(),
        };
        let mut core = lower_query(&q, &config)?;
        if self.config.optimize {
            core = optimize(core);
        }
        let evaluator = Evaluator::new(
            &self.catalog,
            EvalConfig {
                collect_stats,
                ..self.eval_config()
            },
        );
        let bag = evaluator.run(&core)?;
        let stats = evaluator.stats_snapshot();
        // A FROM-less SELECT VALUE produces a singleton bag; unwrap it.
        let value = match bag {
            Value::Bag(mut items) if items.len() == 1 => items.pop().expect("len checked"),
            other => other,
        };
        Ok((value, stats))
    }

    /// Runs either a query or, failing that, a bare expression — the REPL
    /// and compatibility-kit entry point.
    pub fn run_str(&self, src: &str) -> Result<Value> {
        match self.query(src) {
            Ok(r) => Ok(r.into_value()),
            Err(Error::Syntax(first)) => self.eval_expr(src).map_err(|_| Error::Syntax(first)),
            Err(e) => Err(e),
        }
    }

    fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            typing: self.config.typing,
            compat: self.config.compat,
            pipeline_aggregates: self.config.pipeline_aggregates,
            collect_stats: false,
            limits: self.config.limits.clone(),
            fault: self.config.fault.clone(),
            batch_size: self.config.batch_size,
            compile_exprs: self.config.compile_exprs,
            spill: self.config.spill.clone(),
        }
    }
}

/// Renders an `EXPLAIN ANALYZE` report: the operator tree with per-node
/// `[streaming|materializing calls=… rows=… time=…]` annotations, then
/// the phase/counter summary. Operators that buffered rows also show
/// their high-water mark as `mat=…`.
fn render_analysis(core: &CoreQuery, stats: &ExecStats) -> String {
    // Stats are keyed by pre-order plan index; recover each rendered
    // node's index by walking the same pre-order.
    let index_of: std::collections::HashMap<*const CoreOp, u32> = core
        .preorder_ops()
        .iter()
        .enumerate()
        .map(|(i, op)| (*op as *const CoreOp, i as u32))
        .collect();
    let mut text = core.explain_with(&mut |op| {
        let key = index_of.get(&(op as *const CoreOp))?;
        let s = stats.op_at(*key)?;
        let mat = if s.peak_rows > 0 {
            // Breakers that took the out-of-core path are tagged; the
            // others stay explicitly `in-memory` whenever the run spilled
            // anywhere, so a reader can tell which operator was the one
            // under pressure.
            let spill_tag = if s.spilled {
                " spilled"
            } else if stats.spill_partitions > 0 {
                " in-memory"
            } else {
                ""
            };
            format!(" mat={}{}", s.peak_rows, spill_tag)
        } else {
            String::new()
        };
        let pull = if s.batches > 0 {
            format!(" batched batches={}", s.batches)
        } else {
            " row-at-a-time".to_string()
        };
        let exprs = match s.expr_mode {
            sqlpp_eval::stats::ExprMode::None => String::new(),
            sqlpp_eval::stats::ExprMode::Bytecode => " expr=bytecode".to_string(),
            sqlpp_eval::stats::ExprMode::TreeWalk => " expr=tree-walk".to_string(),
            sqlpp_eval::stats::ExprMode::Mixed => " expr=mixed".to_string(),
        };
        Some(format!(
            " [{} calls={} rows={}{}{}{} time={}]",
            op.pipeline_class(),
            s.calls,
            s.rows_out,
            mat,
            pull,
            exprs,
            fmt_ns(s.ns)
        ))
    });
    text.push_str(&stats.render_summary());
    text
}

/// Outcome of [`Engine::execute`].
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one outcome per executed statement
pub enum ExecOutcome {
    /// A query's rows.
    Rows(QueryResult),
    /// A `CREATE TABLE` registered an (empty) collection with a declared
    /// row type.
    Created {
        /// The registered name.
        name: String,
        /// The declared structural row type.
        row_type: SqlppType,
    },
    /// An INSERT appended elements.
    Inserted {
        /// How many elements were inserted.
        count: usize,
    },
    /// A DELETE removed elements.
    Deleted {
        /// How many elements were removed.
        count: usize,
    },
    /// An UPDATE modified elements.
    Updated {
        /// How many elements were modified.
        count: usize,
    },
    /// An `EXPLAIN [ANALYZE]` rendered a plan.
    Explained {
        /// The rendered plan (annotated with runtime statistics under
        /// ANALYZE).
        text: String,
    },
}

/// A parsed-and-lowered query, reusable across executions.
///
/// The plan is stamped with the catalog schema epoch it was lowered
/// against. [`Prepared::execute`] checks the stamp and transparently
/// re-lowers (once per epoch, cached) when the catalog's schemas have
/// moved — stale plans are never executed. Cloning shares the refresh
/// cache, so one re-lowering serves every clone.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The parsed query, retained for re-lowering after schema changes.
    ast: sqlpp_syntax::ast::Query,
    /// Prepare-time planner inputs, reused verbatim on re-lowering.
    compat: CompatMode,
    optimize: bool,
    /// Catalog schema epoch the plan below was lowered against.
    epoch: u64,
    /// The plan lowered at prepare time (valid while the epoch matches).
    core: Arc<CoreQuery>,
    /// Re-lowered plan for a later epoch, filled lazily on first execute
    /// after a schema change (interior-mutable so `&self` stays cheap).
    refreshed: Arc<RwLock<Option<(u64, Arc<CoreQuery>)>>>,
}

impl Prepared {
    /// The Core plan as lowered at prepare time.
    pub fn plan(&self) -> &CoreQuery {
        &self.core
    }

    /// The catalog schema epoch this plan was lowered against.
    pub fn schema_epoch(&self) -> u64 {
        self.epoch
    }

    /// The plan currently valid for `engine`'s catalog: the prepare-time
    /// plan when the schema epoch still matches, otherwise a plan
    /// re-lowered against the current schemas (computed at most once per
    /// epoch and cached).
    fn current_plan(&self, engine: &Engine) -> Result<Arc<CoreQuery>> {
        let now = engine.catalog.schema_epoch();
        if now == self.epoch {
            return Ok(Arc::clone(&self.core));
        }
        {
            let cached = self.refreshed.read().unwrap_or_else(|e| e.into_inner());
            if let Some((e, plan)) = cached.as_ref() {
                if *e == now {
                    return Ok(Arc::clone(plan));
                }
            }
        }
        // Stale: re-lower against a consistent (epoch, snapshot) pair
        // with the prepare-time planner configuration.
        let (epoch, schemas) = engine.catalog.schema_state();
        let config = PlanConfig {
            compat: self.compat,
            schemas,
        };
        let mut core = lower_query(&self.ast, &config)?;
        if self.optimize {
            core = optimize(core);
        }
        let plan = Arc::new(core);
        *self.refreshed.write().unwrap_or_else(|e| e.into_inner()) =
            Some((epoch, Arc::clone(&plan)));
        Ok(plan)
    }

    /// Executes against an engine, re-lowering first if the catalog's
    /// schemas changed since prepare time (the plan never runs stale).
    pub fn execute(&self, engine: &Engine) -> Result<QueryResult> {
        self.execute_with_params(engine, Vec::new())
    }

    /// Executes with positional parameters.
    pub fn execute_with_params(&self, engine: &Engine, params: Vec<Value>) -> Result<QueryResult> {
        let plan = self.current_plan(engine)?;
        let evaluator = Evaluator::new(&engine.catalog, engine.eval_config()).with_params(params);
        Ok(QueryResult::new(evaluator.run(&plan)?))
    }
}

/// Re-export of the qualified-name type for catalog manipulation.
pub type Name = QualifiedName;
