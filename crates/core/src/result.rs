//! Query results and their client-facing views.

use sqlpp_eval::ExecStats;
use sqlpp_value::Value;

/// The result of a query: a SQL++ value (a bag for SELECT queries, a
/// tuple for a top-level PIVOT), plus execution statistics when the query
/// ran with collection enabled ([`crate::Engine::query_with_stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    value: Value,
    stats: Option<ExecStats>,
}

impl QueryResult {
    pub(crate) fn new(value: Value) -> Self {
        QueryResult { value, stats: None }
    }

    pub(crate) fn with_stats(value: Value, stats: ExecStats) -> Self {
        QueryResult {
            value,
            stats: Some(stats),
        }
    }

    /// Execution statistics, present only when the query ran with stats
    /// collection on.
    pub fn stats(&self) -> Option<&ExecStats> {
        self.stats.as_ref()
    }

    /// The raw result value.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Consumes into the raw value.
    pub fn into_value(self) -> Value {
        self.value
    }

    /// The result's elements (treating a non-collection result as a
    /// singleton).
    pub fn rows(&self) -> Vec<&Value> {
        match self.value.as_elements() {
            Some(items) => items.iter().collect(),
            None => vec![&self.value],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.value.as_elements().map_or(1, <[Value]>::len)
    }

    /// True for an empty result collection.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The JDBC/ODBC-style *relational* view the paper describes for
    /// schemaful clients (§IV-B): "the MISSING will be communicated as
    /// NULL for communication compatibility purposes". Produces one row
    /// per element with the union of attribute names as columns; absent
    /// attributes and nested MISSINGs surface as NULL.
    pub fn as_relational(&self) -> (Vec<String>, Vec<Vec<Value>>) {
        let rows = self.rows();
        let mut columns: Vec<String> = Vec::new();
        for row in &rows {
            if let Value::Tuple(t) = row {
                for name in t.names() {
                    if !columns.iter().any(|c| c == name) {
                        columns.push(name.to_string());
                    }
                }
            }
        }
        if columns.is_empty() {
            // Non-tuple rows: a single synthetic column.
            columns.push("_1".to_string());
            let data = rows
                .iter()
                .map(|r| vec![missing_to_null((*r).clone())])
                .collect();
            return (columns, data);
        }
        let data = rows
            .iter()
            .map(|row| {
                columns
                    .iter()
                    .map(|c| match row {
                        Value::Tuple(t) => {
                            missing_to_null(t.get(c).cloned().unwrap_or(Value::Missing))
                        }
                        other => {
                            if c == "_1" {
                                missing_to_null((*other).clone())
                            } else {
                                Value::Null
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        (columns, data)
    }

    /// Pretty-prints in the paper's listing notation.
    pub fn to_pretty(&self) -> String {
        sqlpp_value::to_pretty(&self.value)
    }

    /// Canonicalized (bag-sorted) form for deterministic comparisons.
    pub fn canonical(&self) -> Value {
        sqlpp_value::canonicalize(&self.value)
    }

    /// Bag-equality against an expected value (order-insensitive for
    /// bags, order-sensitive inside arrays), which is how the paper's
    /// listing outputs are checked.
    pub fn matches(&self, expected: &Value) -> bool {
        sqlpp_value::cmp::deep_eq(&self.value, expected)
    }
}

fn missing_to_null(v: Value) -> Value {
    match v {
        Value::Missing => Value::Null,
        other => other,
    }
}

impl From<QueryResult> for Value {
    fn from(r: QueryResult) -> Value {
        r.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::rows;

    #[test]
    fn relational_view_surfaces_missing_as_null() {
        let r = QueryResult::new(rows![
            {"id" => 1i64, "title" => "Mgr"},
            {"id" => 2i64}, // no title
        ]);
        let (cols, data) = r.as_relational();
        assert_eq!(cols, vec!["id", "title"]);
        assert_eq!(data[1][1], Value::Null, "MISSING communicated as NULL");
        assert_eq!(data[0][1], Value::Str("Mgr".into()));
    }

    #[test]
    fn scalar_rows_get_a_synthetic_column() {
        let r = QueryResult::new(sqlpp_value::bag![1i64, 2i64]);
        let (cols, data) = r.as_relational();
        assert_eq!(cols, vec!["_1"]);
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn matches_is_bag_equal() {
        let r = QueryResult::new(sqlpp_value::bag![1i64, 2i64]);
        assert!(r.matches(&sqlpp_value::bag![2i64, 1i64]));
        assert!(!r.matches(&sqlpp_value::bag![1i64]));
    }
}
