//! DML over named collections: INSERT / DELETE / UPDATE.
//!
//! The paper defines a query language; a system a downstream user adopts
//! also needs to put data *in*. These statements follow PartiQL's DML
//! surface (`INSERT INTO t VALUE …`, `DELETE FROM t WHERE …`,
//! `UPDATE t SET … WHERE …`) and respect the engine's semantics: the
//! predicate sees each element under the range variable with full SQL++
//! three-valued logic (an element whose predicate is NULL or MISSING is
//! *not* affected), and collections with an attached schema re-validate on
//! every mutation — the optional-schema tenet extended to writes.
//!
//! **Atomicity.** Every statement is snapshot-or-rollback: it reads an
//! `Arc` snapshot of the target, computes the complete replacement value
//! off to the side (evaluating predicates, sources, and assignments —
//! each a possible failure point under strict typing, resource budgets,
//! or injected faults), and only then publishes it through the single
//! [`Engine::commit_collection`] call. Any error on the way out leaves
//! the catalog byte-identical to the snapshot — there is no partially
//! mutated state to roll back because the stored value is never mutated
//! in place. The chaos suite (`tests/chaos.rs`) snapshot-compares the
//! catalog around every failed DML to pin this.
//!
//! **Concurrency.** Snapshot-and-replace alone is not enough once
//! several sessions write at once: two INSERTs that clone the same
//! snapshot would each commit a replacement missing the other's rows
//! (a lost update). Every statement therefore holds the catalog's
//! [`dml_guard`](sqlpp_catalog::Catalog::dml_guard) from its target
//! read through its commit, serializing writers per catalog. Readers
//! never take that lock — queries keep their lock-free `Arc` snapshots
//! — and INSERT evaluates its source *before* acquiring it, so only
//! the read-modify-write window is serialized. The threaded storm in
//! `tests/serving.rs` and the B16 mixed workload (8 sessions, 1-in-8
//! DML, exact-count assertion) pin this under real contention.

use sqlpp_eval::{Env, EvalConfig, Evaluator, ExecStats};
use sqlpp_plan::lower::lower_with_scope;
use sqlpp_plan::{CoreExpr, CoreOp, PlanConfig, Scope};
use sqlpp_schema::Validator;
use sqlpp_syntax::ast::{
    Delete, Expr, Insert, InsertSource, PathStep, Query, QueryBlock, SelectClause, SetExpr,
    SetQuantifier, Update,
};
use sqlpp_value::{Tuple, Value};

use crate::error::{Error, Result};
use crate::Engine;

/// A collection's elements plus the constructor restoring its kind.
type ElementsAndKind = (Vec<Value>, fn(Vec<Value>) -> Value);

/// Splits a mutable-collection target into elements + rebuilder.
fn open_collection(stmt: &str, name: &str, v: Value) -> Result<ElementsAndKind> {
    match v {
        Value::Bag(items) => Ok((items, Value::Bag)),
        Value::Array(items) => Ok((items, Value::Array)),
        other => Err(Error::Usage(format!(
            "{stmt} target {name} is a {}, not a collection",
            other.kind().name()
        ))),
    }
}

impl Engine {
    /// The single commit point for all DML: replaces `name`'s binding
    /// with a fully computed value. On a durable engine the replacement
    /// is appended to the write-ahead log *before* the catalog publishes
    /// it — the only failure this call can produce. A failed append
    /// leaves the catalog byte-identical to the snapshot the statement
    /// read (the in-memory publish never happens), so statement
    /// atomicity holds on both sides of a crash. The caller already
    /// holds the catalog's `dml_guard` here, which is what lets
    /// [`Engine::checkpoint`] capture images that match the log exactly.
    fn commit_collection(&self, name: &str, value: Value) -> Result<()> {
        if let Some(wal) = self.wal() {
            wal.append_commit(name, &value)?;
        }
        self.catalog().set(name, value);
        Ok(())
    }

    pub(crate) fn exec_insert(
        &self,
        ins: &Insert,
        collect: bool,
    ) -> Result<(usize, Option<ExecStats>)> {
        let name = ins.target.join(".");
        let mut stats: Option<ExecStats> = None;
        let new_elements: Vec<Value> = match &ins.source {
            InsertSource::Value(expr) => {
                let (v, st) = self.eval_expr_with(&sqlpp_syntax::print_expr(expr), collect)?;
                stats = st;
                vec![v]
            }
            InsertSource::Query(q) => {
                let src = sqlpp_syntax::print_query(q);
                let result = if collect {
                    let (_core, value, st) = self.run_with_stats(&src)?;
                    stats = Some(st);
                    value
                } else {
                    self.query(&src)?.into_value()
                };
                match result {
                    Value::Bag(items) | Value::Array(items) => items,
                    single => vec![single],
                }
            }
        };
        // Schema enforcement on write (all-or-nothing).
        if let Some(schema) = self.catalog().schema(&crate::Name::parse(&name)) {
            let validator = Validator::new((*schema).clone());
            for (i, v) in new_elements.iter().enumerate() {
                if !validator.is_valid_element(v) {
                    return Err(Error::Schema(format!(
                        "INSERT INTO {name}: element {i} ({}) does not conform \
                         to the attached schema {}",
                        v.kind().name(),
                        schema
                    )));
                }
            }
        }
        let count = new_elements.len();
        // Serialize the read-modify-write against concurrent writers; the
        // source evaluation above ran lock-free on its own snapshot.
        let _writers = self.catalog().dml_guard();
        let updated = match self.catalog().get_str(&name) {
            Ok(existing) => match (*existing).clone() {
                Value::Bag(mut items) => {
                    items.extend(new_elements);
                    Value::Bag(items)
                }
                Value::Array(mut items) => {
                    items.extend(new_elements);
                    Value::Array(items)
                }
                other => {
                    return Err(Error::Usage(format!(
                        "INSERT target {name} is a {}, not a collection",
                        other.kind().name()
                    )));
                }
            },
            // Inserting into an unbound name creates a bag.
            Err(_) => Value::Bag(new_elements),
        };
        self.commit_collection(&name, updated)?;
        Ok((count, stats))
    }

    pub(crate) fn exec_delete(
        &self,
        del: &Delete,
        collect: bool,
    ) -> Result<(usize, Option<ExecStats>)> {
        let name = del.target.join(".");
        let alias = del
            .alias
            .clone()
            .unwrap_or_else(|| del.target.last().expect("non-empty name").clone());
        // Held through commit: the kept-rows computation depends on the
        // snapshot read here, so a concurrent writer must wait.
        let _writers = self.catalog().dml_guard();
        let existing = self.catalog().get_str(&name)?;
        let (items, rebuild) = open_collection("DELETE", &name, (*existing).clone())?;
        let matcher = self.compile_row_predicate(&del.where_clause, &alias)?;
        let evaluator = Evaluator::new(self.catalog(), self.dml_eval_config(collect));
        let mut kept = Vec::with_capacity(items.len());
        let mut deleted = 0usize;
        for item in items {
            if row_matches(&evaluator, &matcher, &alias, &item)? {
                deleted += 1;
            } else {
                kept.push(item);
            }
        }
        self.commit_collection(&name, rebuild(kept))?;
        Ok((deleted, evaluator.stats_snapshot()))
    }

    pub(crate) fn exec_update(
        &self,
        up: &Update,
        collect: bool,
    ) -> Result<(usize, Option<ExecStats>)> {
        let name = up.target.join(".");
        let alias = up
            .alias
            .clone()
            .unwrap_or_else(|| up.target.last().expect("non-empty name").clone());
        // Held through commit, as in DELETE: the rebuilt collection is
        // derived from the snapshot read here.
        let _writers = self.catalog().dml_guard();
        let existing = self.catalog().get_str(&name)?;
        let (items, rebuild) = open_collection("UPDATE", &name, (*existing).clone())?;
        let matcher = self.compile_row_predicate(&up.where_clause, &alias)?;
        // Each assignment: an attribute path (rooted at the element) and a
        // compiled RHS evaluated against the OLD element, SQL-style.
        let mut compiled: Vec<(Vec<String>, CoreExpr)> = Vec::new();
        for (path, value) in &up.assignments {
            let attrs = assignment_path(path, &alias)?;
            compiled.push((attrs, self.compile_row_expr(value, &alias)?));
        }
        let evaluator = Evaluator::new(self.catalog(), self.dml_eval_config(collect));
        let mut updated_items = Vec::with_capacity(items.len());
        let mut updated = 0usize;
        let schema = self.catalog().schema(&crate::Name::parse(&name));
        for item in items {
            if !row_matches(&evaluator, &matcher, &alias, &item)? {
                updated_items.push(item);
                continue;
            }
            let env = Env::new().bind(alias.clone(), item.clone());
            // Evaluate every RHS against the old element first.
            let mut new_values = Vec::with_capacity(compiled.len());
            for (_, rhs) in &compiled {
                new_values.push(evaluator.expr(rhs, &env)?);
            }
            let mut element = item;
            for ((attrs, _), value) in compiled.iter().zip(new_values) {
                element = set_path(element, attrs, value)?;
            }
            if let Some(schema) = &schema {
                if !Validator::new((**schema).clone()).is_valid_element(&element) {
                    return Err(Error::Schema(format!(
                        "UPDATE {name}: updated element does not conform to \
                         the attached schema {schema}"
                    )));
                }
            }
            updated += 1;
            updated_items.push(element);
        }
        self.commit_collection(&name, rebuild(updated_items))?;
        Ok((updated, evaluator.stats_snapshot()))
    }

    fn dml_eval_config(&self, collect_stats: bool) -> EvalConfig {
        EvalConfig {
            typing: self.config().typing,
            compat: self.config().compat,
            pipeline_aggregates: self.config().pipeline_aggregates,
            collect_stats,
            // DML evaluation runs under the same governor as queries:
            // budgets, deadlines, and injected faults abort the statement
            // before its commit point, leaving the catalog untouched.
            limits: self.config().limits.clone(),
            fault: self.config().fault.clone(),
            batch_size: self.config().batch_size,
            compile_exprs: self.config().compile_exprs,
            spill: self.config().spill.clone(),
        }
    }

    /// Compiles a WHERE predicate with `alias` in scope; `None` matches
    /// everything.
    fn compile_row_predicate(&self, pred: &Option<Expr>, alias: &str) -> Result<Option<CoreExpr>> {
        match pred {
            None => Ok(None),
            Some(p) => Ok(Some(self.compile_row_expr(p, alias)?)),
        }
    }

    /// Lowers one expression with `alias` (and the catalog schemas) in
    /// scope, reusing the planner end to end.
    fn compile_row_expr(&self, expr: &Expr, alias: &str) -> Result<CoreExpr> {
        let mut scope = Scope::new();
        scope.push();
        scope.add(alias.to_string());
        let block = QueryBlock::with_select(SelectClause::SelectValue {
            quantifier: SetQuantifier::All,
            expr: expr.clone(),
        });
        let q = Query {
            ctes: Vec::new(),
            body: SetExpr::Block(Box::new(block)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        };
        let config = PlanConfig {
            compat: self.config().compat,
            schemas: self.catalog().schema_snapshot(),
        };
        let core = lower_with_scope(&q, &config, &mut scope).map_err(Error::Plan)?;
        match core.op {
            CoreOp::Project { expr, .. } => Ok(expr),
            other => Err(Error::Usage(format!(
                "unexpected lowering for DML expression: {other:?}"
            ))),
        }
    }
}

/// Three-valued match: only a TRUE predicate affects the row. Takes the
/// statement's evaluator so its stats accumulate across all rows.
fn row_matches(
    evaluator: &Evaluator<'_>,
    matcher: &Option<CoreExpr>,
    alias: &str,
    item: &Value,
) -> Result<bool> {
    let Some(pred) = matcher else {
        return Ok(true);
    };
    let env = Env::new().bind(alias.to_string(), item.clone());
    Ok(matches!(evaluator.expr(pred, &env)?, Value::Bool(true)))
}

/// Normalizes a SET path to the attribute chain below the element:
/// `alias.a.b`, or bare `a.b` (rooted implicitly).
fn assignment_path(path: &Expr, alias: &str) -> Result<Vec<String>> {
    let Expr::Path { head, steps } = path else {
        return Err(Error::Usage(
            "SET target must be an attribute path".to_string(),
        ));
    };
    let mut attrs: Vec<String> = Vec::with_capacity(steps.len() + 1);
    if head != alias {
        attrs.push(head.clone());
    }
    for step in steps {
        match step {
            PathStep::Attr(a) => attrs.push(a.clone()),
            PathStep::Index(_) => {
                return Err(Error::Usage(
                    "SET through array indices is not supported".to_string(),
                ));
            }
        }
    }
    if attrs.is_empty() {
        return Err(Error::Usage(
            "SET target must name an attribute, not the whole element".to_string(),
        ));
    }
    Ok(attrs)
}

/// Functional update of `element.attrs… = value`; intermediate tuples are
/// created as needed, and a MISSING value removes the attribute (the
/// write-side mirror of tuple construction dropping MISSING).
fn set_path(element: Value, attrs: &[String], value: Value) -> Result<Value> {
    let mut t = match element {
        Value::Tuple(t) => t,
        other => {
            return Err(Error::Usage(format!(
                "cannot SET attribute {:?} of a {}",
                attrs[0],
                other.kind().name()
            )));
        }
    };
    let (first, rest) = attrs.split_first().expect("non-empty path");
    if rest.is_empty() {
        if value.is_missing() {
            t.remove(first);
        } else {
            t.upsert(first.clone(), value);
        }
        return Ok(Value::Tuple(t));
    }
    let inner = t
        .remove(first)
        .unwrap_or_else(|| Value::Tuple(Tuple::new()));
    let updated = set_path(inner, rest, value)?;
    t.upsert(first.clone(), updated);
    Ok(Value::Tuple(t))
}

/// Needed by exec_* above; re-exported from the schema validator.
trait ValidatorExt {
    fn is_valid_element(&self, v: &Value) -> bool;
}

impl ValidatorExt for Validator {
    fn is_valid_element(&self, v: &Value) -> bool {
        self.element_type().admits(v)
    }
}
