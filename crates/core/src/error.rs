//! The unified engine error type.

use std::fmt;

/// Any error an [`crate::Engine`] operation can produce.
#[derive(Debug)]
pub enum Error {
    /// Lexing/parsing failed.
    Syntax(sqlpp_syntax::SyntaxError),
    /// Lowering to SQL++ Core failed.
    Plan(sqlpp_plan::PlanError),
    /// Evaluation failed (strict mode errors, unknown names, …).
    Eval(sqlpp_eval::EvalError),
    /// A data format failed to read or write.
    Format(sqlpp_formats::FormatError),
    /// A catalog lookup failed.
    Catalog(sqlpp_catalog::CatalogError),
    /// Schema validation rejected data.
    Schema(String),
    /// The durability layer failed (WAL append, checkpoint, recovery).
    /// Boxed: the payload is 64 bytes, and an inline variant would cost
    /// every `Result<_, Error>` on the query path its niche packing.
    Durability(Box<sqlpp_durability::DurabilityError>),
    /// Misuse of the API (e.g. executing a CREATE TABLE as a query).
    Usage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax(e) => write!(f, "{e}"),
            Error::Plan(e) => write!(f, "{e}"),
            Error::Eval(e) => write!(f, "{e}"),
            Error::Format(e) => write!(f, "{e}"),
            Error::Catalog(e) => write!(f, "{e}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Durability(e) => write!(f, "{e}"),
            Error::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Syntax(e) => Some(e),
            Error::Plan(e) => Some(e),
            Error::Eval(e) => Some(e),
            Error::Format(e) => Some(e),
            Error::Catalog(e) => Some(e),
            Error::Durability(e) => Some(e.as_ref()),
            Error::Schema(_) | Error::Usage(_) => None,
        }
    }
}

impl From<sqlpp_syntax::SyntaxError> for Error {
    fn from(e: sqlpp_syntax::SyntaxError) -> Self {
        Error::Syntax(e)
    }
}
impl From<sqlpp_plan::PlanError> for Error {
    fn from(e: sqlpp_plan::PlanError) -> Self {
        Error::Plan(e)
    }
}
impl From<sqlpp_eval::EvalError> for Error {
    fn from(e: sqlpp_eval::EvalError) -> Self {
        Error::Eval(e)
    }
}
impl From<sqlpp_formats::FormatError> for Error {
    fn from(e: sqlpp_formats::FormatError) -> Self {
        Error::Format(e)
    }
}
impl From<sqlpp_catalog::CatalogError> for Error {
    fn from(e: sqlpp_catalog::CatalogError) -> Self {
        Error::Catalog(e)
    }
}
impl From<sqlpp_durability::DurabilityError> for Error {
    fn from(e: sqlpp_durability::DurabilityError) -> Self {
        Error::Durability(Box::new(e))
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, Error>;
