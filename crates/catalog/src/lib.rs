//! # sqlpp-catalog — named SQL++ values
//!
//! A SQL++ database "contains one or more SQL++ named values" (§II). A
//! name is an identifier, possibly dotted/namespaced — `hr.emp_nest_tuples`
//! "could reflect the database/table hierarchy of a MySQL database or the
//! schema/table hierarchy of a Postgres database". This crate provides a
//! concurrent in-memory catalog mapping such names to values, with
//! snapshot isolation for readers (values are handed out as `Arc`s and
//! replaced wholesale on write).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use sqlpp_schema::SqlppType;
use sqlpp_value::Value;

/// Acquires a read lock, recovering from poisoning: a panicked writer
/// can only have been mid-`insert`/`remove` on the `BTreeMap`, whose
/// tree structure is exception-safe, so the data is still consistent
/// and read access remains sound.
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Acquires a write lock, recovering from poisoning (see [`read`]).
fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// A dotted, namespaced name such as `hr.emp` (case-sensitive, as the
/// paper's examples rely on exact attribute and collection names).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QualifiedName(Vec<String>);

impl QualifiedName {
    /// Builds a name from its segments. Empty segment lists are invalid.
    pub fn new<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let segs: Vec<String> = segments.into_iter().map(Into::into).collect();
        assert!(
            !segs.is_empty(),
            "qualified name needs at least one segment"
        );
        QualifiedName(segs)
    }

    /// Parses a dotted string: `"hr.emp"` → `["hr", "emp"]`.
    pub fn parse(dotted: &str) -> Self {
        QualifiedName::new(dotted.split('.'))
    }

    /// The segments.
    pub fn segments(&self) -> &[String] {
        &self.0
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false (construction requires one segment).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for QualifiedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("."))
    }
}

impl From<&str> for QualifiedName {
    fn from(s: &str) -> Self {
        QualifiedName::parse(s)
    }
}

/// Errors from catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The name is not bound.
    NotFound(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::NotFound(name) => {
                write!(f, "name {name:?} is not bound in the catalog")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// The in-memory catalog of named values.
///
/// Cloning a `Catalog` is cheap and shares the underlying storage, so a
/// catalog can be handed to several engine sessions. Readers obtain
/// `Arc<Value>` snapshots; a concurrent `set` replaces the binding without
/// disturbing in-flight readers.
#[derive(Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<BTreeMap<QualifiedName, Arc<Value>>>>,
    schemas: Arc<RwLock<BTreeMap<QualifiedName, Arc<SqlppType>>>>,
    /// Monotonic version of the *schema* map. Query plans depend on the
    /// catalog only through its schema attachments (§III static
    /// disambiguation), so this epoch is exactly the validity stamp a
    /// prepared plan (or a shared plan cache) needs: same epoch ⇒ the
    /// plan's lowering inputs are unchanged. Bumped under the schemas
    /// write lock so `schema_state` reads are consistent.
    schema_epoch: Arc<AtomicU64>,
    /// Serializes read-modify-write statements (see [`Catalog::dml_guard`]).
    dml: Arc<Mutex<()>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Binds `name` to `value`, replacing any previous binding.
    pub fn set(&self, name: impl Into<QualifiedName>, value: Value) {
        write(&self.inner).insert(name.into(), Arc::new(value));
    }

    /// Looks up a binding.
    pub fn get(&self, name: &QualifiedName) -> Result<Arc<Value>, CatalogError> {
        read(&self.inner)
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::NotFound(name.to_string()))
    }

    /// Looks up by dotted string.
    pub fn get_str(&self, dotted: &str) -> Result<Arc<Value>, CatalogError> {
        self.get(&QualifiedName::parse(dotted))
    }

    /// Resolves the *longest* name prefix of `segments` that is bound,
    /// returning the value and how many segments were consumed. This is how
    /// `hr.emp_nest_tuples.x` distinguishes "navigate attribute `x` of
    /// collection `hr.emp_nest_tuples`" from a three-segment catalog name.
    pub fn resolve_prefix(&self, segments: &[String]) -> Option<(Arc<Value>, usize)> {
        let map = read(&self.inner);
        for take in (1..=segments.len()).rev() {
            let name = QualifiedName(segments[..take].to_vec());
            if let Some(v) = map.get(&name) {
                return Some((v.clone(), take));
            }
        }
        None
    }

    /// Removes a binding, returning it if present. Any schema attached to
    /// the name is removed with it (advancing the schema epoch).
    pub fn remove(&self, name: &QualifiedName) -> Option<Arc<Value>> {
        {
            let mut schemas = write(&self.schemas);
            if schemas.remove(name).is_some() {
                self.schema_epoch.fetch_add(1, Ordering::Release);
            }
        }
        write(&self.inner).remove(name)
    }

    /// Attaches a declared/inferred *element* schema to a name — the
    /// paper's optional-schema tenet: data stays self-describing, but a
    /// schema, when present, enables static disambiguation (§III).
    /// Advances the schema epoch: plans lowered before this call are
    /// stale and must be re-lowered (see [`Catalog::schema_epoch`]).
    pub fn set_schema(&self, name: impl Into<QualifiedName>, element_type: SqlppType) {
        let mut schemas = write(&self.schemas);
        schemas.insert(name.into(), Arc::new(element_type));
        self.schema_epoch.fetch_add(1, Ordering::Release);
    }

    /// The element schema attached to a name, if any.
    pub fn schema(&self, name: &QualifiedName) -> Option<Arc<SqlppType>> {
        read(&self.schemas).get(name).cloned()
    }

    /// All `(dotted name, element type)` schema attachments — the planner
    /// consumes this snapshot for static disambiguation.
    pub fn schema_snapshot(&self) -> Vec<(String, SqlppType)> {
        read(&self.schemas)
            .iter()
            .map(|(k, v)| (k.to_string(), (**v).clone()))
            .collect()
    }

    /// The current schema epoch: a counter that advances on every schema
    /// attachment or detachment. A plan lowered against epoch *e* is
    /// valid exactly while `schema_epoch() == e`; prepared statements and
    /// plan caches key on it to never execute (or serve) a stale plan.
    pub fn schema_epoch(&self) -> u64 {
        self.schema_epoch.load(Ordering::Acquire)
    }

    /// Advances the schema epoch to at least `target` (monotonic — a
    /// smaller target is a no-op). Durability recovery uses this to
    /// restore the epoch a snapshot recorded, so epochs never move
    /// backwards across a restart and cached plans keyed on pre-crash
    /// epochs can never be mistaken for current.
    pub fn advance_schema_epoch_to(&self, target: u64) {
        self.schema_epoch.fetch_max(target, Ordering::Release);
    }

    /// The schema epoch together with the snapshot it stamps, read under
    /// one guard so the pair is consistent: a plan lowered from the
    /// returned snapshot is valid exactly while the catalog's epoch still
    /// equals the returned epoch.
    pub fn schema_state(&self) -> (u64, Vec<(String, SqlppType)>) {
        let schemas = read(&self.schemas);
        let epoch = self.schema_epoch.load(Ordering::Acquire);
        let snapshot = schemas
            .iter()
            .map(|(k, v)| (k.to_string(), (**v).clone()))
            .collect();
        (epoch, snapshot)
    }

    /// Serializes DML statements. A read-modify-write over a binding
    /// (INSERT/DELETE/UPDATE reads an `Arc` snapshot, computes the full
    /// replacement value, and `set`s it wholesale) must hold this guard
    /// from its target read through its commit — otherwise two
    /// concurrent writers clone the same snapshot and the second commit
    /// silently discards the first's rows (a lost update). Readers
    /// never take this lock: snapshot isolation via [`Catalog::get`] is
    /// unaffected, so queries keep running while a writer holds it.
    pub fn dml_guard(&self) -> MutexGuard<'_, ()> {
        self.dml.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// True when the exact name is bound.
    pub fn contains(&self, name: &QualifiedName) -> bool {
        read(&self.inner).contains_key(name)
    }

    /// All bound names, sorted.
    pub fn names(&self) -> Vec<QualifiedName> {
        read(&self.inner).keys().cloned().collect()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        read(&self.inner).len()
    }

    /// True when no names are bound.
    pub fn is_empty(&self) -> bool {
        read(&self.inner).is_empty()
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let map = read(&self.inner);
        f.debug_map()
            .entries(map.iter().map(|(k, v)| (k.to_string(), v.kind().name())))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::{bag, Value};

    #[test]
    fn set_get_roundtrip() {
        let cat = Catalog::new();
        cat.set("hr.emp", bag![1i64, 2i64]);
        assert_eq!(*cat.get_str("hr.emp").unwrap(), bag![1i64, 2i64]);
        assert!(cat.get_str("hr.other").is_err());
    }

    #[test]
    fn names_are_case_sensitive_and_dotted() {
        let cat = Catalog::new();
        cat.set("HR.Emp", Value::Int(1));
        assert!(cat.get_str("hr.emp").is_err());
        assert!(cat.contains(&QualifiedName::parse("HR.Emp")));
        assert_eq!(cat.names().len(), 1);
    }

    #[test]
    fn resolve_prefix_prefers_longest_match() {
        let cat = Catalog::new();
        cat.set("hr", Value::Int(1));
        cat.set("hr.emp", Value::Int(2));
        let segs: Vec<String> = vec!["hr".into(), "emp".into(), "name".into()];
        let (v, used) = cat.resolve_prefix(&segs).unwrap();
        assert_eq!(*v, Value::Int(2));
        assert_eq!(used, 2);
        // Falls back to the shorter binding when the longer is absent.
        let segs2: Vec<String> = vec!["hr".into(), "dept".into()];
        let (v2, used2) = cat.resolve_prefix(&segs2).unwrap();
        assert_eq!(*v2, Value::Int(1));
        assert_eq!(used2, 1);
        assert!(cat.resolve_prefix(&["zz".to_string()]).is_none());
    }

    #[test]
    fn clones_share_state_and_writes_do_not_disturb_readers() {
        let cat = Catalog::new();
        cat.set("t", Value::Int(1));
        let snapshot = cat.get_str("t").unwrap();
        let clone = cat.clone();
        clone.set("t", Value::Int(2));
        // The old snapshot is unchanged; new reads see the new value.
        assert_eq!(*snapshot, Value::Int(1));
        assert_eq!(*cat.get_str("t").unwrap(), Value::Int(2));
    }

    #[test]
    fn remove_and_len() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        cat.set("a", Value::Int(1));
        cat.set("b", Value::Int(2));
        assert_eq!(cat.len(), 2);
        assert!(cat.remove(&QualifiedName::parse("a")).is_some());
        assert!(cat.remove(&QualifiedName::parse("a")).is_none());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn schema_epoch_tracks_schema_mutations_only() {
        let cat = Catalog::new();
        let e0 = cat.schema_epoch();
        // Plain value writes leave plans valid: no epoch movement.
        cat.set("t", Value::Int(1));
        cat.set("t", Value::Int(2));
        assert_eq!(cat.schema_epoch(), e0);
        // Attaching a schema invalidates.
        cat.set_schema("t", sqlpp_schema::SqlppType::Any);
        let e1 = cat.schema_epoch();
        assert!(e1 > e0);
        // Re-attaching counts too (the type may differ).
        cat.set_schema("t", sqlpp_schema::SqlppType::Any);
        let e2 = cat.schema_epoch();
        assert!(e2 > e1);
        // Removing a schemaless name is epoch-neutral…
        cat.set("plain", Value::Int(3));
        cat.remove(&QualifiedName::parse("plain"));
        assert_eq!(cat.schema_epoch(), e2);
        // …removing a schema-attached one is not.
        cat.remove(&QualifiedName::parse("t"));
        assert!(cat.schema_epoch() > e2);
        // The epoch and snapshot read consistently as a pair.
        let (e, snap) = cat.schema_state();
        assert_eq!(e, cat.schema_epoch());
        assert!(snap.is_empty());
    }

    #[test]
    fn poisoned_locks_recover() {
        let cat = Catalog::new();
        cat.set("t", Value::Int(1));
        // Poison the value lock: panic on another thread while holding
        // the write guard.
        let inner = Arc::clone(&cat.inner);
        let result = std::thread::spawn(move || {
            let _guard = inner.write().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(result.is_err(), "the poisoning thread must have panicked");
        // Reads and writes keep working through the recovery helpers.
        assert_eq!(*cat.get_str("t").unwrap(), Value::Int(1));
        cat.set("t", Value::Int(2));
        assert_eq!(*cat.get_str("t").unwrap(), Value::Int(2));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cat = Catalog::new();
        cat.set("shared", Value::Int(0));
        std::thread::scope(|s| {
            for i in 0..8 {
                let cat = cat.clone();
                s.spawn(move || {
                    for j in 0..100 {
                        cat.set(format!("t{i}").as_str(), Value::Int(j));
                        let _ = cat.get_str("shared");
                    }
                });
            }
        });
        assert_eq!(cat.len(), 9);
    }
}
