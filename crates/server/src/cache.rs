//! The shared prepared-statement + plan cache.
//!
//! Keyed by `(normalized query text, compat mode, catalog schema epoch)`
//! — the three inputs that determine a lowered plan. The epoch component
//! is what makes a *shared* cache sound by construction: a schema change
//! advances the catalog's epoch, every subsequent lookup keys on the new
//! epoch, and the stale entries can never be hit again (they are purged
//! on the next insert). Layered under this, [`Prepared`] itself
//! revalidates its stamp on every execute, so even a plan handed out
//! just before a schema change re-lowers rather than running stale.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sqlpp::{CompatMode, Engine, Prepared};

/// Counters describing cache behaviour since server start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (parse/lower/optimize skipped).
    pub hits: u64,
    /// Lookups that had to prepare a fresh plan.
    pub misses: u64,
    /// Entries purged because their schema epoch fell behind the
    /// catalog's (each one a stale plan that was never served).
    pub invalidations: u64,
    /// Entries currently resident.
    pub size: usize,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    text: String,
    compat: CompatMode,
    epoch: u64,
}

/// A cached plan plus its last-touched tick — the recency order for LRU
/// eviction. Ticks come from one monotone counter shared by lookups and
/// inserts, so "smallest tick" is always "least recently used".
#[derive(Debug)]
struct Entry {
    plan: Arc<Prepared>,
    tick: u64,
}

/// A bounded, thread-shared plan cache (see module docs for the keying
/// invariant). Eviction is LRU: at capacity, the single least-recently
/// used entry makes room — a hot plan is never dropped just because an
/// unrelated query filled the cache.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    map: Mutex<HashMap<Key, Entry>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            map: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The next recency tick. Relaxed is fine: ticks only order entries
    /// against each other, and every use happens under the map lock.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Whitespace/comment-insensitive form of a query: its token texts
    /// joined by single spaces, so `SELECT  x\nFROM t` and
    /// `select x from t` — textually different, byte-identical token
    /// streams — share one cache entry. Keywords are case-normalized by
    /// the lexer's token text only when identical; we keep the source
    /// spelling, so normalization is conservative (never merges queries
    /// that could plan differently). Unlexable input is returned
    /// trimmed; it will miss the cache and fail in prepare with a full
    /// diagnostic.
    pub fn normalize(src: &str) -> String {
        match sqlpp_syntax::lex(src) {
            Ok(tokens) => {
                let mut out = String::with_capacity(src.len());
                for t in &tokens {
                    let text = &src[t.span.start..t.span.end];
                    if text.is_empty() {
                        continue; // EOF token
                    }
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(text);
                }
                out
            }
            Err(_) => src.trim().to_string(),
        }
    }

    /// The cached plan for `(text, compat)` under the catalog's *current*
    /// schema epoch, if resident. A hit can only return a plan whose
    /// stamp equals `epoch` — the key guarantees it.
    pub fn get(&self, text: &str, compat: CompatMode, epoch: u64) -> Option<Arc<Prepared>> {
        if self.capacity == 0 {
            return None;
        }
        let key = Key {
            text: text.to_string(),
            compat,
            epoch,
        };
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let found = map.get_mut(&key).map(|entry| {
            entry.tick = self.tick();
            Arc::clone(&entry.plan)
        });
        drop(map);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Prepares `text` on `engine` and caches it under the epoch the
    /// plan was actually lowered against (its own stamp — not the epoch
    /// observed at lookup time — so key and plan can never disagree).
    /// Stale-epoch entries are purged on the way in.
    pub fn prepare_and_insert(
        &self,
        engine: &Engine,
        text: &str,
        compat: CompatMode,
    ) -> sqlpp::Result<Arc<Prepared>> {
        let prepared = Arc::new(engine.prepare(text)?);
        if self.capacity == 0 {
            return Ok(prepared);
        }
        let epoch = prepared.schema_epoch();
        let key = Key {
            text: text.to_string(),
            compat,
            epoch,
        };
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let before = map.len();
        map.retain(|k, _| k.epoch == epoch);
        let purged = before - map.len();
        if purged > 0 {
            self.invalidations
                .fetch_add(purged as u64, Ordering::Relaxed);
        }
        while map.len() >= self.capacity && !map.contains_key(&key) {
            // Full of same-epoch plans: evict the least recently used
            // one. A hot plan keeps its slot no matter how many distinct
            // queries pass through.
            let Some(lru) = map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            map.remove(&lru);
        }
        map.insert(
            key,
            Entry {
                plan: Arc::clone(&prepared),
                tick: self.tick(),
            },
        );
        Ok(prepared)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            size: self.map.lock().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register("t", sqlpp_value::bag![1i64, 2i64, 3i64]);
        e
    }

    #[test]
    fn normalization_collapses_whitespace_but_not_structure() {
        let a = PlanCache::normalize("SELECT   VALUE t.x\n\tFROM t AS t");
        let b = PlanCache::normalize("SELECT VALUE t.x FROM t AS t");
        assert_eq!(a, b);
        // Different literals stay different queries.
        assert_ne!(
            PlanCache::normalize("SELECT VALUE 1"),
            PlanCache::normalize("SELECT VALUE 2")
        );
        // Strings keep their exact contents (whitespace inside matters).
        assert_ne!(
            PlanCache::normalize("SELECT VALUE 'a  b'"),
            PlanCache::normalize("SELECT VALUE 'a b'")
        );
    }

    #[test]
    fn hit_after_miss_and_epoch_invalidation() {
        let engine = engine();
        let cache = PlanCache::new(8);
        let compat = engine.config().compat;
        let text = PlanCache::normalize("SELECT VALUE t FROM t AS t");
        let epoch = engine.catalog().schema_epoch();

        assert!(cache.get(&text, compat, epoch).is_none());
        let p = cache.prepare_and_insert(&engine, &text, compat).unwrap();
        assert!(Arc::ptr_eq(&cache.get(&text, compat, epoch).unwrap(), &p));
        assert_eq!(cache.stats().hits, 1);

        // A schema change moves the epoch: the old entry is unreachable
        // and gets purged by the next insert.
        engine
            .catalog()
            .set_schema("t", sqlpp_schema::SqlppType::Any);
        let epoch2 = engine.catalog().schema_epoch();
        assert!(epoch2 > epoch);
        assert!(cache.get(&text, compat, epoch2).is_none());
        cache.prepare_and_insert(&engine, &text, compat).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1, "stale entry purged");
        assert_eq!(stats.size, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let engine = engine();
        let cache = PlanCache::new(0);
        let compat = engine.config().compat;
        let text = PlanCache::normalize("SELECT VALUE t FROM t AS t");
        cache.prepare_and_insert(&engine, &text, compat).unwrap();
        assert!(cache
            .get(&text, compat, engine.catalog().schema_epoch())
            .is_none());
        assert_eq!(cache.stats().size, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used_entry_only() {
        let engine = engine();
        let cache = PlanCache::new(2);
        let compat = engine.config().compat;
        let epoch = engine.catalog().schema_epoch();
        let q1 = PlanCache::normalize("SELECT VALUE t FROM t AS t");
        let q2 = PlanCache::normalize("SELECT VALUE t + 1 FROM t AS t");
        let q3 = PlanCache::normalize("SELECT VALUE t + 2 FROM t AS t");

        cache.prepare_and_insert(&engine, &q1, compat).unwrap();
        cache.prepare_and_insert(&engine, &q2, compat).unwrap();
        // Touch q1: it is now more recently used than q2.
        assert!(cache.get(&q1, compat, epoch).is_some());

        // Inserting a third plan at capacity 2 must evict q2 (the LRU),
        // not q1, and must not clear the whole cache.
        cache.prepare_and_insert(&engine, &q3, compat).unwrap();
        assert_eq!(cache.stats().size, 2);
        assert!(cache.get(&q1, compat, epoch).is_some(), "hot entry kept");
        assert!(cache.get(&q3, compat, epoch).is_some(), "new entry kept");
        assert!(cache.get(&q2, compat, epoch).is_none(), "LRU evicted");

        // Re-inserting an already-resident key at capacity evicts
        // nothing: it just refreshes the entry in place.
        cache.prepare_and_insert(&engine, &q1, compat).unwrap();
        assert_eq!(cache.stats().size, 2);
        assert!(cache.get(&q3, compat, epoch).is_some());
    }

    #[test]
    fn results_still_correct_through_cache() {
        let engine = engine();
        let cache = PlanCache::new(8);
        let compat = engine.config().compat;
        let text = PlanCache::normalize("SELECT VALUE t FROM t AS t WHERE t >= 2");
        let p = cache.prepare_and_insert(&engine, &text, compat).unwrap();
        let r = p.execute(&engine).unwrap();
        assert_eq!(r.canonical().to_string(), "{{2, 3}}");
        let again = cache
            .get(&text, compat, engine.catalog().schema_epoch())
            .unwrap();
        let r2 = again.execute(&engine).unwrap();
        assert_eq!(r2.canonical().to_string(), "{{2, 3}}");
    }
}
