//! A minimal blocking client for the wire protocol — used by tests,
//! benchmarks, and the README example. One `Client` is one session: a
//! TCP connection speaking length-prefixed request/response frames.
//!
//! Resilience is opt-in: attach a [`RetryPolicy`] and the client retries
//! `Overloaded` responses (admission shedding, tripped session budgets)
//! and connect failures with seeded, jittered exponential backoff —
//! bounded attempts, deterministic under a fixed seed, and *only* for
//! those two outcomes. Real errors (syntax, plan, eval…) surface
//! immediately: retrying them would just repeat the failure.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sqlpp_formats::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use sqlpp_value::Value;

/// Bounded-retry configuration for [`Client`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries, including the first (so `1` means "never retry";
    /// `0` is treated as `1`).
    pub max_attempts: u32,
    /// Backoff before retry *n* (1-based) is `base_delay * 2^(n-1)`,
    /// jittered down by up to half. `Duration::ZERO` disables sleeping
    /// (tests use this to pin attempt counts without wall-clock cost).
    pub base_delay: Duration,
    /// Seed for the jitter stream — same seed, same delays.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(20),
            seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before 1-based retry `attempt`, advancing
    /// the jitter state.
    fn backoff(&self, attempt: u32, state: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16));
        if exp.is_zero() {
            return exp;
        }
        // xorshift64* — enough randomness to de-synchronize a thundering
        // herd, zero dependencies.
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        let jitter_ns = (exp.as_nanos() / 2) as u64;
        exp - Duration::from_nanos(*state % (jitter_ns + 1))
    }
}

/// A blocking session over one TCP connection.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    retry: Option<RetryPolicy>,
    jitter: u64,
    retries: u64,
}

impl Client {
    /// Connects to a running [`crate::Server`].
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let (reader, writer) = open_stream(addr)?;
        Ok(Client {
            addr,
            reader,
            writer,
            retry: None,
            jitter: 0,
            retries: 0,
        })
    }

    /// Connects with retry on connect failure, and arms the same policy
    /// for subsequent queries (see [`Client::with_retry`]).
    pub fn connect_with_retry(addr: SocketAddr, policy: RetryPolicy) -> io::Result<Client> {
        let mut jitter = policy.seed | 1; // xorshift state must be nonzero
        let attempts = policy.max_attempts.max(1);
        let mut retries = 0u64;
        let mut last_err = None;
        for attempt in 1..=attempts {
            match open_stream(addr) {
                Ok((reader, writer)) => {
                    return Ok(Client {
                        addr,
                        reader,
                        writer,
                        retry: Some(policy),
                        jitter,
                        retries,
                    });
                }
                Err(e) => {
                    last_err = Some(e);
                    if attempt < attempts {
                        retries += 1;
                        std::thread::sleep(policy.backoff(attempt, &mut jitter));
                    }
                }
            }
        }
        Err(last_err.expect("at least one attempt"))
    }

    /// Arms bounded retry for queries on this session: `Overloaded`
    /// responses and dropped connections after shedding are retried up
    /// to the policy's budget with jittered backoff. Off by default.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.jitter = policy.seed | 1;
        self.retry = Some(policy);
        self
    }

    /// Retries performed over this client's lifetime (connect + query).
    /// Tests pin exact attempt counts through this.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sends one statement and waits for its response.
    pub fn query(&mut self, src: &str) -> io::Result<Response> {
        self.query_with_params(src, Vec::new())
    }

    /// Sends one query with positional parameters (`$1`, `$2`, …).
    ///
    /// With a [`RetryPolicy`] armed, `Overloaded` responses and
    /// connection drops (the server sheds queue-overflow connections by
    /// answering `Overloaded` and closing) are retried; every other
    /// response — including error responses — returns immediately.
    pub fn query_with_params(&mut self, src: &str, params: Vec<Value>) -> io::Result<Response> {
        let Some(policy) = self.retry.clone() else {
            return self.send_once(src, params);
        };
        let attempts = policy.max_attempts.max(1);
        let mut last: Option<io::Result<Response>> = None;
        for attempt in 1..=attempts {
            let result = self.send_once(src, params.clone());
            let retryable = match &result {
                Ok(Response::Overloaded { .. }) => true,
                // A shed connection surfaces as a broken stream on the
                // *next* request; reconnecting gets a fresh admission
                // decision. Anything else io-ish is equally worth one
                // more try against a live server.
                Err(_) => true,
                Ok(_) => false,
            };
            if !retryable || attempt == attempts {
                return result;
            }
            last = Some(result);
            self.retries += 1;
            std::thread::sleep(policy.backoff(attempt, &mut self.jitter));
            // Reconnect so a server that closed this session (or one
            // that restarted) serves the retry; keep the old stream on
            // failure so the caller sees the connect error next round.
            if let Ok((reader, writer)) = open_stream(self.addr) {
                self.reader = reader;
                self.writer = writer;
            }
        }
        last.expect("loop ran at least once")
    }

    fn send_once(&mut self, src: &str, params: Vec<Value>) -> io::Result<Response> {
        let req = Request {
            query: src.to_string(),
            params,
        };
        write_frame(&mut self.writer, &encode_request(&req))?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })?;
        decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

fn open_stream(addr: SocketAddr) -> io::Result<(BufReader<TcpStream>, BufWriter<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let reader = BufReader::new(stream.try_clone()?);
    let writer = BufWriter::new(stream);
    Ok((reader, writer))
}
