//! A minimal blocking client for the wire protocol — used by tests,
//! benchmarks, and the README example. One `Client` is one session: a
//! TCP connection speaking length-prefixed request/response frames.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};

use sqlpp_formats::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use sqlpp_value::Value;

/// A blocking session over one TCP connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running [`crate::Server`].
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client { reader, writer })
    }

    /// Sends one statement and waits for its response.
    pub fn query(&mut self, src: &str) -> io::Result<Response> {
        self.query_with_params(src, Vec::new())
    }

    /// Sends one query with positional parameters (`$1`, `$2`, …).
    pub fn query_with_params(&mut self, src: &str, params: Vec<Value>) -> io::Result<Response> {
        let req = Request {
            query: src.to_string(),
            params,
        };
        write_frame(&mut self.writer, &encode_request(&req))?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })?;
        decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
