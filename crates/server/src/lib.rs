//! # sqlpp-server — many sessions, one engine
//!
//! A multi-threaded session server over the [`sqlpp`] engine: a
//! `std::net::TcpListener` accept loop feeds a fixed worker pool, each
//! worker serving one connection at a time over the length-prefixed wire
//! protocol of [`sqlpp_formats::wire`]. The layers below were built
//! concurrency-ready — the catalog hands out `Arc` snapshots, DML
//! serializes its read-modify-write on the catalog's writer guard and
//! publishes through one commit point, and the governor gives every
//! query a budget/deadline/cancel token — this crate is the layer that
//! exercises all of it at once (DESIGN.md §5.10).
//!
//! Three serving concerns live here:
//!
//! * **Admission control.** The worker pool bounds concurrency; beyond
//!   it a small accept queue buffers bursts, and past *that* the server
//!   sheds: the connection gets a structured `Overloaded` frame and is
//!   closed, never a hang. Per-session [`SessionConfig`] limits
//!   (memory-row budgets, deadlines) are the second admission tier — a
//!   tripped budget also surfaces as `Overloaded`, and the engine
//!   remains fully usable (the governor guarantees refuse-don't-corrupt).
//! * **Plan caching.** A shared prepared-statement cache keyed by
//!   `(normalized text, compat mode, catalog schema epoch)` amortizes
//!   parse/lower/optimize across repeated query shapes from all
//!   sessions. The epoch key makes sharing sound: schema changes move
//!   the epoch and strand stale entries (see [`cache::PlanCache`]).
//! * **Isolation.** Request handling runs under `catch_unwind`; a panic
//!   becomes an `internal` error response and the worker lives on.
//!
//! ```no_run
//! use sqlpp::Engine;
//! use sqlpp_server::{Client, Server, ServerConfig};
//!
//! let engine = Engine::new();
//! engine.load_pnotation("t", "{{ {'x': 1}, {'x': 2} }}").unwrap();
//! let server = Server::start(engine, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let resp = client.query("SELECT VALUE t.x FROM t AS t").unwrap();
//! println!("{resp:?}");
//! server.shutdown();
//! ```

#![warn(missing_docs)]

mod cache;
mod client;

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use sqlpp::{Engine, Error, EvalError, ExecOutcome, SessionConfig};
use sqlpp_formats::wire::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, WireDiagnostic,
};
use sqlpp_value::{Tuple, Value};

pub use cache::{CacheStats, PlanCache};
pub use client::{Client, RetryPolicy};
pub use sqlpp_formats::wire;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads — the number of sessions served concurrently.
    pub workers: usize,
    /// Accepted connections allowed to wait for a free worker before new
    /// arrivals are shed with `Overloaded`.
    pub max_pending: usize,
    /// Engine configuration applied to every session: the compat/typing
    /// dials plus per-query governor limits (the second admission tier).
    pub session: SessionConfig,
    /// Plan-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_pending: 64,
            session: SessionConfig::default(),
            cache_capacity: 256,
        }
    }
}

/// Point-in-time serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered (any response kind).
    pub served: u64,
    /// Connections shed at admission (queue full).
    pub shed_connections: u64,
    /// Requests answered `Overloaded` because a session budget tripped.
    pub shed_requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Panics caught and converted to `internal` error responses.
    pub panics: u64,
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    shed_connections: AtomicU64,
    shed_requests: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
}

/// The connection queue between the accept loop and the workers.
struct WorkQueue {
    queue: Mutex<(VecDeque<TcpStream>, bool)>, // (pending, closed)
    ready: Condvar,
}

impl WorkQueue {
    fn new() -> Self {
        WorkQueue {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    /// Enqueues if under `cap`; hands the stream back (shed) otherwise.
    fn push(&self, stream: TcpStream, cap: usize) -> Result<(), TcpStream> {
        let mut guard = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if guard.0.len() >= cap {
            return Err(stream);
        }
        guard.0.push_back(stream);
        drop(guard);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut guard = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(s) = guard.0.pop_front() {
                return Some(s);
            }
            if guard.1 {
                return None;
            }
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).1 = true;
        self.ready.notify_all();
    }
}

/// Clones of every stream a worker is currently serving, so shutdown can
/// sever connections whose clients are idle — a worker blocked in
/// `read_frame` would otherwise never join.
#[derive(Default)]
struct ConnRegistry {
    conns: Mutex<(HashMap<u64, TcpStream>, bool)>, // (active, closed)
    next: AtomicU64,
}

impl ConnRegistry {
    /// Registers a serving connection; returns `None` (refusing service)
    /// once the registry is closed.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let mut guard = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        if guard.1 {
            let _ = stream.shutdown(Shutdown::Both);
            return None;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        guard.0.insert(id, clone);
        Some(id)
    }

    fn unregister(&self, id: u64) {
        self.conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .0
            .remove(&id);
    }

    /// Marks the registry closed and severs every active connection.
    fn close_all(&self) {
        let mut guard = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        guard.1 = true;
        for stream in guard.0.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        guard.0.clear();
    }
}

/// A running session server. Dropping it shuts the server down.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    queue: Arc<WorkQueue>,
    registry: Arc<ConnRegistry>,
    cache: Arc<PlanCache>,
    counters: Arc<Counters>,
    /// A handle onto the served engine (shared catalog + WAL), kept so
    /// graceful shutdown can checkpoint after the workers drain.
    engine: Engine,
}

impl Server {
    /// Binds an ephemeral local port and starts the accept loop plus
    /// `config.workers` worker threads over (a session-configured clone
    /// of) `engine`. The engine's catalog is shared — DML through the
    /// server is visible to the caller's handle and vice versa.
    pub fn start(engine: Engine, config: ServerConfig) -> io::Result<Server> {
        Server::bind("127.0.0.1:0", engine, config)
    }

    /// [`Server::start`] on an explicit address.
    pub fn bind(addr: &str, engine: Engine, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(WorkQueue::new());
        let registry = Arc::new(ConnRegistry::default());
        let cache = Arc::new(PlanCache::new(config.cache_capacity));
        let counters = Arc::new(Counters::default());
        let session_engine = engine.with_config(config.session.clone());

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let cache = Arc::clone(&cache);
            let counters = Arc::clone(&counters);
            let engine = session_engine.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sqlpp-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            let Some(id) = registry.register(&stream) else {
                                continue; // shutting down
                            };
                            serve_connection(&engine, &cache, &counters, stream);
                            registry.unregister(id);
                        }
                    })?,
            );
        }

        let accept = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            let max_pending = config.max_pending;
            std::thread::Builder::new()
                .name("sqlpp-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_nodelay(true);
                        if let Err(shed) = queue.push(stream, max_pending) {
                            // Shed: answer the queued-too-deep connection
                            // with a structured refusal instead of
                            // hanging it. Best-effort — the client may
                            // already be gone.
                            counters.shed_connections.fetch_add(1, Ordering::Relaxed);
                            let mut w = io::BufWriter::new(shed);
                            let _ = write_frame(
                                &mut w,
                                &encode_response(&Response::Overloaded {
                                    message: "admission queue full; retry later".to_string(),
                                }),
                            );
                        }
                    }
                    queue.close();
                })?
        };

        Ok(Server {
            addr: local,
            stop,
            accept: Some(accept),
            workers,
            queue,
            registry,
            cache,
            counters,
            engine: session_engine,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Plan-cache counters (hits mean parse/lower/optimize was skipped).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Serving counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            served: self.counters.served.load(Ordering::Relaxed),
            shed_connections: self.counters.shed_connections.load(Ordering::Relaxed),
            shed_requests: self.counters.shed_requests.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, drains the queue, joins every thread.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.queue.close();
        // Sever live connections: a worker mid-`read_frame` on an idle
        // session would otherwise block the join until its client went
        // away (in-flight requests still finish — only the next read
        // fails).
        self.registry.close_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Graceful shutdown on a durable engine ends with a checkpoint:
        // every worker has drained, so the image is the final state and
        // the next open replays nothing. Best-effort — a failed
        // checkpoint just leaves the WAL for recovery to replay.
        let _ = self.engine.checkpoint();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_threads();
        }
    }
}

/// One worker serving one connection: frames in, frames out, until the
/// peer closes or the stream errors.
fn serve_connection(engine: &Engine, cache: &PlanCache, counters: &Counters, stream: TcpStream) {
    let mut reader = io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = io::BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // clean close or dead stream
        };
        let response = match decode_request(&payload) {
            Ok(req) => {
                // A panic anywhere in statement handling must not take
                // the worker (or the server) down: convert it to a
                // structured internal error and keep serving. The engine
                // is a pile of `Arc` snapshots — a panicked request
                // cannot leave partial state behind (DML publishes
                // all-or-nothing through one commit point).
                match catch_unwind(AssertUnwindSafe(|| handle_request(engine, cache, &req))) {
                    Ok(resp) => resp,
                    Err(panic) => {
                        counters.panics.fetch_add(1, Ordering::Relaxed);
                        Response::Error {
                            code: "internal".to_string(),
                            message: format!("internal error: {}", panic_text(&panic)),
                            diagnostics: Vec::new(),
                        }
                    }
                }
            }
            Err(e) => Response::Error {
                code: "wire".to_string(),
                message: e.to_string(),
                diagnostics: Vec::new(),
            },
        };
        counters.served.fetch_add(1, Ordering::Relaxed);
        match &response {
            Response::Error { .. } => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            Response::Overloaded { .. } => {
                counters.shed_requests.fetch_add(1, Ordering::Relaxed);
            }
            Response::Rows(_) => {}
        }
        if write_frame(&mut writer, &encode_response(&response)).is_err() {
            return;
        }
    }
}

/// Statement dispatch: cached-plan fast path for queries, the engine's
/// statement executor for everything else.
fn handle_request(engine: &Engine, cache: &PlanCache, req: &Request) -> Response {
    let compat = engine.config().compat;
    let text = PlanCache::normalize(&req.query);

    // Fast path: a cache hit skips parse, lowering, and optimization
    // entirely — the dominant win under repeated query shapes.
    if let Some(prepared) = cache.get(&text, compat, engine.catalog().schema_epoch()) {
        return match prepared.execute_with_params(engine, req.params.clone()) {
            Ok(rows) => Response::Rows(rows.into_value()),
            Err(e) => error_response(&req.query, &e),
        };
    }

    // Miss: find out what this is. Queries get prepared + cached;
    // other statements run through the general executor.
    match sqlpp_syntax::parse_statement(&req.query) {
        Ok(sqlpp_syntax::ast::Statement::Query(_)) => {
            match cache.prepare_and_insert(engine, &text, compat) {
                Ok(prepared) => match prepared.execute_with_params(engine, req.params.clone()) {
                    Ok(rows) => Response::Rows(rows.into_value()),
                    Err(e) => error_response(&req.query, &e),
                },
                Err(e) => error_response(&req.query, &e),
            }
        }
        Ok(_) => {
            if !req.params.is_empty() {
                return Response::Error {
                    code: "usage".to_string(),
                    message: "positional parameters are only supported on queries".to_string(),
                    diagnostics: Vec::new(),
                };
            }
            match engine.execute(&req.query) {
                Ok(outcome) => Response::Rows(outcome_value(outcome)),
                Err(e) => error_response(&req.query, &e),
            }
        }
        Err(e) => error_response(&req.query, &Error::Syntax(e)),
    }
}

/// Maps non-query outcomes onto single summary tuples so every response
/// is one value.
fn outcome_value(outcome: ExecOutcome) -> Value {
    let summary = |k: &str, v: Value| {
        let mut t = Tuple::with_capacity(1);
        t.insert(k, v);
        Value::Tuple(t)
    };
    match outcome {
        ExecOutcome::Rows(r) => r.into_value(),
        ExecOutcome::Inserted { count } => summary("inserted", Value::Int(count as i64)),
        ExecOutcome::Deleted { count } => summary("deleted", Value::Int(count as i64)),
        ExecOutcome::Updated { count } => summary("updated", Value::Int(count as i64)),
        ExecOutcome::Created { name, .. } => summary("created", Value::Str(name)),
        ExecOutcome::Explained { text } => summary("plan", Value::Str(text)),
    }
}

/// Classifies an engine error into a wire response. Governor refusals —
/// budget exhaustion and deadline/token cancellation — are *shedding*,
/// not errors: the session limits admitted less work than the request
/// needed, the engine is fine, and the client should back off.
fn error_response(src: &str, err: &Error) -> Response {
    match err {
        Error::Eval(EvalError::ResourceExhausted { .. })
        | Error::Eval(EvalError::Cancelled { .. }) => Response::Overloaded {
            message: err.to_string(),
        },
        _ => {
            let code = match err {
                Error::Syntax(_) => "syntax",
                Error::Plan(_) => "plan",
                Error::Eval(_) => "eval",
                Error::Format(_) => "format",
                Error::Catalog(_) => "catalog",
                Error::Schema(_) => "schema",
                Error::Durability(_) => "durability",
                Error::Usage(_) => "usage",
            };
            let diagnostics = sqlpp::diagnostics_for(src, err)
                .into_iter()
                .map(|d| WireDiagnostic {
                    code: d.code.to_string(),
                    message: d.message,
                    start: d.span.start,
                    end: d.span.end,
                })
                .collect();
            Response::Error {
                code: code.to_string(),
                message: err.to_string(),
                diagnostics,
            }
        }
    }
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "panic of unknown type"
    }
}
