//! Pinned behavior of the client's bounded retry: exact attempt counts
//! against a scripted stub server, immediate surfacing of non-retryable
//! errors, and connect-retry.
//!
//! The stub speaks just enough of the wire protocol to script responses
//! deterministically — a real `Server` sheds under load, but *when* it
//! sheds depends on thread scheduling; these tests need exact counts.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sqlpp_formats::wire::{encode_response, read_frame, write_frame, Response};
use sqlpp_server::{Client, RetryPolicy};

/// Starts a stub that answers every request on every connection with
/// `response`, counting requests served. Returns (addr, counter).
fn scripted_server(response: Response) -> (SocketAddr, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let served = Arc::new(AtomicU64::new(0));
    let count = Arc::clone(&served);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = BufWriter::new(stream);
            while let Ok(Some(_req)) = read_frame(&mut reader) {
                count.fetch_add(1, Ordering::SeqCst);
                if write_frame(&mut writer, &encode_response(&response)).is_err() {
                    break;
                }
            }
        }
    });
    (addr, served)
}

/// Zero-delay policy: attempt counts without wall-clock cost.
fn fast_policy(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_delay: Duration::ZERO,
        seed: 42,
    }
}

#[test]
fn overloaded_is_retried_exactly_to_the_attempt_budget() {
    let (addr, served) = scripted_server(Response::Overloaded {
        message: "scripted shed".into(),
    });
    let mut client = Client::connect(addr)
        .expect("connect")
        .with_retry(fast_policy(4));
    let resp = client.query("SELECT VALUE 1").expect("wire ok");
    assert!(matches!(resp, Response::Overloaded { .. }));
    assert_eq!(served.load(Ordering::SeqCst), 4, "4 attempts on the wire");
    assert_eq!(client.retries(), 3, "3 retries after the first attempt");
}

#[test]
fn error_responses_surface_immediately() {
    let (addr, served) = scripted_server(Response::Error {
        code: "syntax".into(),
        message: "scripted error".into(),
        diagnostics: Vec::new(),
    });
    let mut client = Client::connect(addr)
        .expect("connect")
        .with_retry(fast_policy(5));
    let resp = client.query("SELECT bogus!").expect("wire ok");
    match resp {
        Response::Error { code, .. } => assert_eq!(code, "syntax"),
        other => panic!("expected error response, got {other:?}"),
    }
    assert_eq!(served.load(Ordering::SeqCst), 1, "no retry on real errors");
    assert_eq!(client.retries(), 0);
}

#[test]
fn without_a_policy_overloaded_is_returned_as_is() {
    let (addr, served) = scripted_server(Response::Overloaded {
        message: "scripted shed".into(),
    });
    let mut client = Client::connect(addr).expect("connect");
    let resp = client.query("SELECT VALUE 1").expect("wire ok");
    assert!(matches!(resp, Response::Overloaded { .. }));
    assert_eq!(served.load(Ordering::SeqCst), 1);
    assert_eq!(client.retries(), 0);
}

#[test]
fn connect_retry_succeeds_against_a_live_server_without_spending_retries() {
    let (addr, _served) = scripted_server(Response::Rows(sqlpp_value::Value::empty_bag()));
    let client = Client::connect_with_retry(addr, fast_policy(3)).expect("connect");
    assert_eq!(client.retries(), 0);
}

#[test]
fn connect_retry_exhausts_against_a_dead_address() {
    // Bind then drop: the port is (momentarily) guaranteed refused.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let err = Client::connect_with_retry(addr, fast_policy(3));
    assert!(err.is_err(), "no server, connect must fail after retries");
}

#[test]
fn backoff_is_deterministic_under_a_seed() {
    // Same seed → same jitter stream → same delays; different seed →
    // (almost surely) different. Pinned indirectly through the policy's
    // public behavior: two clients with the same policy retry the same
    // number of times against the same script.
    let (addr, served) = scripted_server(Response::Overloaded {
        message: "scripted shed".into(),
    });
    for _ in 0..2 {
        let mut client = Client::connect(addr)
            .expect("connect")
            .with_retry(RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_micros(50),
                seed: 7,
            });
        let _ = client.query("SELECT VALUE 1").expect("wire ok");
        assert_eq!(client.retries(), 1);
    }
    assert_eq!(served.load(Ordering::SeqCst), 4);
}
