//! # sqlpp-formats — format independence in practice
//!
//! The paper's fifth tenet: "A query should be written identically across
//! underlying data in any of today's many nested and/or semistructured
//! formats: JSON, Parquet, Avro, ORC, CSV, CBOR, Ion, and others. Queries
//! should operate on a comprehensive logical type system that maps to
//! diverse underlying formats." (§I)
//!
//! This crate maps four structurally different encodings onto the one
//! logical data model of [`sqlpp_value`]:
//!
//! | module | format | demonstrates |
//! |---|---|---|
//! | [`json`] | RFC 8259 JSON (+ JSON Lines) | the dominant text format |
//! | [`pnotation`] | the paper's `{{ … }}` object notation | bags & MISSING in text |
//! | [`csv`] | RFC 4180 CSV | flat/tabular data, absent-vs-null mapping |
//! | [`ion_lite`] | binary TLV (Ion/CBOR stand-in, DESIGN.md §4) | binary self-describing data |
//!
//! The [`DataFormat`] trait ties them together so engines and benchmarks
//! can be format-generic.

#![warn(missing_docs)]

pub mod csv;
mod error;
pub mod ion_lite;
pub mod json;
pub mod pnotation;
pub mod wire;

pub use error::FormatError;

use sqlpp_value::Value;

/// A self-describing external data format that maps to the SQL++ logical
/// model. `read` and `write` must satisfy `read(write(v)) == v` for every
/// value in the format's documented subset.
pub trait DataFormat {
    /// The format's short name (`"json"`, `"csv"`, …).
    fn name(&self) -> &'static str;
    /// Decodes bytes into a value.
    fn read(&self, data: &[u8]) -> Result<Value, FormatError>;
    /// Encodes a value into bytes.
    fn write(&self, value: &Value) -> Result<Vec<u8>, FormatError>;
}

/// JSON (single document).
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonFormat;

impl DataFormat for JsonFormat {
    fn name(&self) -> &'static str {
        "json"
    }
    fn read(&self, data: &[u8]) -> Result<Value, FormatError> {
        let text = std::str::from_utf8(data)
            .map_err(|_| FormatError::parse("json", "invalid UTF-8", 0))?;
        json::from_json(text)
    }
    fn write(&self, value: &Value) -> Result<Vec<u8>, FormatError> {
        Ok(json::to_json(value).into_bytes())
    }
}

/// The paper's object notation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PNotationFormat;

impl DataFormat for PNotationFormat {
    fn name(&self) -> &'static str {
        "pnotation"
    }
    fn read(&self, data: &[u8]) -> Result<Value, FormatError> {
        let text = std::str::from_utf8(data)
            .map_err(|_| FormatError::parse("pnotation", "invalid UTF-8", 0))?;
        pnotation::from_pnotation(text)
    }
    fn write(&self, value: &Value) -> Result<Vec<u8>, FormatError> {
        Ok(pnotation::to_pnotation(value).into_bytes())
    }
}

/// CSV with default options.
#[derive(Debug, Clone, Default)]
pub struct CsvFormat {
    /// Reader options.
    pub options: csv::CsvOptions,
}

impl DataFormat for CsvFormat {
    fn name(&self) -> &'static str {
        "csv"
    }
    fn read(&self, data: &[u8]) -> Result<Value, FormatError> {
        let text =
            std::str::from_utf8(data).map_err(|_| FormatError::parse("csv", "invalid UTF-8", 0))?;
        csv::from_csv(text, &self.options)
    }
    fn write(&self, value: &Value) -> Result<Vec<u8>, FormatError> {
        csv::to_csv(value).map(String::into_bytes)
    }
}

/// The binary TLV format.
#[derive(Debug, Clone, Copy, Default)]
pub struct IonLiteFormat;

impl DataFormat for IonLiteFormat {
    fn name(&self) -> &'static str {
        "ion-lite"
    }
    fn read(&self, data: &[u8]) -> Result<Value, FormatError> {
        ion_lite::from_ion_lite(data)
    }
    fn write(&self, value: &Value) -> Result<Vec<u8>, FormatError> {
        Ok(ion_lite::to_ion_lite(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::rows;

    /// The same logical collection, readable from all four formats — the
    /// format-independence tenet end to end at the data layer. (The query
    /// layer version of this test lives in the workspace `tests/`.)
    #[test]
    fn one_collection_four_formats() {
        let expected = rows![
            {"id" => 1i64, "name" => "Ann"},
            {"id" => 2i64, "name" => "Bo"},
        ];
        let formats: Vec<Box<dyn DataFormat>> = vec![
            Box::new(JsonFormat),
            Box::new(PNotationFormat),
            Box::new(CsvFormat::default()),
            Box::new(IonLiteFormat),
        ];
        for fmt in formats {
            let bytes = fmt.write(&expected).unwrap();
            let back = fmt.read(&bytes).unwrap();
            // JSON loses bag-ness (arrays only): compare order-insensitively
            // via canonical forms on the element level.
            let norm = |v: &Value| match v {
                Value::Array(items) | Value::Bag(items) => items.clone(),
                other => vec![other.clone()],
            };
            assert_eq!(norm(&back), norm(&expected), "format {}", fmt.name());
        }
    }
}
