//! Format errors.

use std::fmt;

/// An error while reading or writing an external format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    format: &'static str,
    kind: Kind,
    message: String,
    offset: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Parse,
    Encode,
}

impl FormatError {
    /// A parse (read) error at a byte offset.
    pub fn parse(format: &'static str, message: impl Into<String>, offset: usize) -> Self {
        FormatError {
            format,
            kind: Kind::Parse,
            message: message.into(),
            offset,
        }
    }

    /// An encode (write) error.
    pub fn encode(format: &'static str, message: impl Into<String>) -> Self {
        FormatError {
            format,
            kind: Kind::Encode,
            message: message.into(),
            offset: 0,
        }
    }

    /// Which format produced the error.
    pub fn format(&self) -> &'static str {
        self.format
    }

    /// The underlying message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            Kind::Parse => write!(
                f,
                "{} parse error at byte {}: {}",
                self.format, self.offset, self.message
            ),
            Kind::Encode => write!(f, "{} encode error: {}", self.format, self.message),
        }
    }
}

impl std::error::Error for FormatError {}
