//! CSV ↔ SQL++ (RFC 4180 quoting).
//!
//! CSV demonstrates the *flat* end of format independence: a header row
//! names the attributes, each record becomes a tuple, and the file becomes
//! a bag of tuples. Empty unquoted fields map to MISSING (the attribute is
//! simply absent — CSV cannot distinguish "no value" from "empty"), while
//! quoted empty fields map to the empty string; the literal `NULL` maps to
//! NULL. Values are typed by sniffing: integer, decimal, boolean, else
//! string.

use std::fmt::Write as _;

use sqlpp_value::{Decimal, Tuple, Value};

use crate::error::FormatError;

/// Options controlling CSV reading.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: u8,
    /// Whether the first record is a header (default true). Without a
    /// header, attributes are named `_1`, `_2`, ….
    pub header: bool,
    /// Sniff scalar types (default true); otherwise everything is a
    /// string.
    pub type_sniffing: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: b',',
            header: true,
            type_sniffing: true,
        }
    }
}

/// Reads a CSV document into a bag of tuples.
pub fn from_csv(text: &str, options: &CsvOptions) -> Result<Value, FormatError> {
    let records = parse_records(text, options.delimiter)?;
    let mut iter = records.into_iter();
    let header: Vec<String> = if options.header {
        match iter.next() {
            Some(h) => h.into_iter().map(|f| f.text).collect(),
            None => return Ok(Value::empty_bag()),
        }
    } else {
        Vec::new()
    };
    let mut rows = Vec::new();
    for record in iter.by_ref() {
        let mut t = Tuple::with_capacity(record.len());
        for (i, field) in record.into_iter().enumerate() {
            let name = if options.header {
                header
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("_{}", i + 1))
            } else {
                format!("_{}", i + 1)
            };
            t.insert(name, field.into_value(options.type_sniffing));
        }
        rows.push(Value::Tuple(t));
    }
    Ok(Value::Bag(rows))
}

/// Writes a bag/array of tuples as CSV. The header is the union of all
/// attribute names in first-appearance order; absent attributes emit empty
/// fields, NULLs emit the literal `NULL`.
pub fn to_csv(v: &Value) -> Result<String, FormatError> {
    let items = v
        .as_elements()
        .ok_or_else(|| FormatError::encode("csv", "top-level value must be a collection"))?;
    let mut header: Vec<String> = Vec::new();
    for item in items {
        let t = item
            .as_tuple()
            .ok_or_else(|| FormatError::encode("csv", "every element must be a tuple"))?;
        for name in t.names() {
            if !header.iter().any(|h| h == name) {
                header.push(name.to_string());
            }
        }
    }
    let mut out = String::new();
    write_record(&mut out, header.iter().map(|h| Some((h.as_str(), false))));
    for item in items {
        let t = item.as_tuple().expect("checked above");
        // `(text, force_quote)`: strings are force-quoted when they would
        // otherwise read back as a typed value (numbers, booleans, NULL).
        let mut fields: Vec<Option<(String, bool)>> = Vec::with_capacity(header.len());
        for name in &header {
            match t.get(name) {
                None => fields.push(None),
                Some(Value::Null) => fields.push(Some(("NULL".to_string(), false))),
                Some(Value::Str(s)) => {
                    let ambiguous = s == "NULL"
                        || s.parse::<i64>().is_ok()
                        || looks_numeric(s)
                        || matches!(s.as_str(), "true" | "TRUE" | "false" | "FALSE");
                    fields.push(Some((s.clone(), ambiguous)));
                }
                Some(scalar) if scalar.is_scalar() => {
                    fields.push(Some((scalar.to_string(), false)));
                }
                Some(nested) => {
                    // Nested values embed their paper-notation rendering —
                    // lossy but explicit, like engines exporting JSON into
                    // CSV cells.
                    fields.push(Some((nested.to_string(), false)));
                }
            }
        }
        write_record(
            &mut out,
            fields
                .iter()
                .map(|f| f.as_ref().map(|(t, q)| (t.as_str(), *q))),
        );
    }
    Ok(out)
}

fn write_record<'a>(out: &mut String, fields: impl Iterator<Item = Option<(&'a str, bool)>>) {
    let mut first = true;
    for field in fields {
        if !first {
            out.push(',');
        }
        first = false;
        match field {
            None => {}
            Some((text, force_quote)) => {
                if force_quote || text.contains([',', '"', '\n', '\r']) || text.is_empty() {
                    out.push('"');
                    for c in text.chars() {
                        if c == '"' {
                            out.push('"');
                        }
                        out.push(c);
                    }
                    out.push('"');
                } else {
                    let _ = write!(out, "{text}");
                }
            }
        }
    }
    out.push('\n');
}

struct Field {
    text: String,
    quoted: bool,
}

impl Field {
    fn into_value(self, sniff: bool) -> Value {
        if !self.quoted {
            if self.text.is_empty() {
                return Value::Missing; // dropped by Tuple::insert
            }
            if self.text == "NULL" {
                return Value::Null;
            }
            if sniff {
                if let Ok(i) = self.text.parse::<i64>() {
                    return Value::Int(i);
                }
                if looks_numeric(&self.text) {
                    if let Ok(d) = self.text.parse::<Decimal>() {
                        return Value::Decimal(d);
                    }
                }
                match self.text.as_str() {
                    "true" | "TRUE" => return Value::Bool(true),
                    "false" | "FALSE" => return Value::Bool(false),
                    _ => {}
                }
            }
        }
        Value::Str(self.text)
    }
}

fn looks_numeric(s: &str) -> bool {
    let rest = s.strip_prefix('-').unwrap_or(s);
    !rest.is_empty()
        && rest.bytes().all(|b| b.is_ascii_digit() || b == b'.')
        && rest.bytes().filter(|&b| b == b'.').count() <= 1
}

fn parse_records(text: &str, delim: u8) -> Result<Vec<Vec<Field>>, FormatError> {
    let bytes = text.as_bytes();
    let mut records = Vec::new();
    let mut record: Vec<Field> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut pos = 0usize;
    let mut in_quotes = false;
    let mut any = false;

    while pos < bytes.len() {
        let b = bytes[pos];
        if in_quotes {
            match b {
                b'"' => {
                    if bytes.get(pos + 1) == Some(&b'"') {
                        field.push('"');
                        pos += 2;
                    } else {
                        in_quotes = false;
                        pos += 1;
                    }
                }
                _ => {
                    let ch = text[pos..].chars().next().expect("in bounds");
                    field.push(ch);
                    pos += ch.len_utf8();
                }
            }
            continue;
        }
        match b {
            b'"' if field.is_empty() && !quoted => {
                in_quotes = true;
                quoted = true;
                any = true;
                pos += 1;
            }
            b if b == delim => {
                record.push(Field {
                    text: std::mem::take(&mut field),
                    quoted,
                });
                quoted = false;
                any = true;
                pos += 1;
            }
            b'\r' => {
                pos += 1;
            }
            b'\n' => {
                if any || !field.is_empty() || !record.is_empty() {
                    record.push(Field {
                        text: std::mem::take(&mut field),
                        quoted,
                    });
                    records.push(std::mem::take(&mut record));
                }
                quoted = false;
                any = false;
                pos += 1;
            }
            _ => {
                let ch = text[pos..].chars().next().expect("in bounds");
                field.push(ch);
                any = true;
                pos += ch.len_utf8();
            }
        }
    }
    if in_quotes {
        return Err(FormatError::parse("csv", "unterminated quoted field", pos));
    }
    if any || !field.is_empty() || !record.is_empty() {
        record.push(Field {
            text: field,
            quoted,
        });
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::rows;

    fn read(text: &str) -> Value {
        from_csv(text, &CsvOptions::default()).unwrap()
    }

    #[test]
    fn reads_typed_rows() {
        let v = read("id,name,salary\n1,Alice,95000.5\n2,Bob,88000\n");
        let expected = rows![
            {"id" => 1i64, "name" => "Alice",
             "salary" => Value::Decimal("95000.5".parse().unwrap())},
            {"id" => 2i64, "name" => "Bob", "salary" => 88000i64},
        ];
        assert_eq!(v, expected);
    }

    #[test]
    fn empty_fields_become_missing_and_null_literal_becomes_null() {
        let v = read("id,title\n1,\n2,NULL\n3,Engineer\n");
        let rows = v.as_elements().unwrap();
        assert_eq!(rows[0].path("title"), Value::Missing); // absent
        assert!(!rows[0].as_tuple().unwrap().contains("title"));
        assert_eq!(rows[1].path("title"), Value::Null);
        assert_eq!(rows[2].path("title"), Value::Str("Engineer".into()));
    }

    #[test]
    fn quoted_fields_preserve_commas_quotes_newlines() {
        let v = read("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n\"line1\nline2\",z\n");
        let rows = v.as_elements().unwrap();
        assert_eq!(rows[0].path("a"), Value::Str("x,y".into()));
        assert_eq!(rows[0].path("b"), Value::Str("he said \"hi\"".into()));
        assert_eq!(rows[1].path("a"), Value::Str("line1\nline2".into()));
    }

    #[test]
    fn quoted_empty_is_empty_string_not_missing() {
        let v = read("a\n\"\"\n");
        assert_eq!(
            v.as_elements().unwrap()[0].path("a"),
            Value::Str(String::new())
        );
    }

    #[test]
    fn quoted_numbers_stay_strings() {
        let v = read("a\n\"42\"\n");
        assert_eq!(
            v.as_elements().unwrap()[0].path("a"),
            Value::Str("42".into())
        );
    }

    #[test]
    fn round_trip_preserves_data() {
        let data = rows![
            {"id" => 1i64, "name" => "A,comma", "flag" => true},
            {"id" => 2i64, "name" => "plain", "note" => Value::Null},
        ];
        let text = to_csv(&data).unwrap();
        let back = from_csv(&text, &CsvOptions::default()).unwrap();
        // Row 1 lacks `note` (missing), row 2 has it as NULL.
        let rows = back.as_elements().unwrap();
        assert_eq!(rows[0].path("name"), Value::Str("A,comma".into()));
        assert_eq!(rows[0].path("note"), Value::Missing);
        assert_eq!(rows[1].path("note"), Value::Null);
        assert_eq!(rows[0].path("flag"), Value::Bool(true));
    }

    #[test]
    fn headerless_mode_names_columns_positionally() {
        let opts = CsvOptions {
            header: false,
            ..CsvOptions::default()
        };
        let v = from_csv("1,x\n2,y\n", &opts).unwrap();
        assert_eq!(v.as_elements().unwrap()[0].path("_1"), Value::Int(1));
        assert_eq!(
            v.as_elements().unwrap()[1].path("_2"),
            Value::Str("y".into())
        );
    }

    #[test]
    fn custom_delimiter() {
        let opts = CsvOptions {
            delimiter: b';',
            ..CsvOptions::default()
        };
        let v = from_csv("a;b\n1;2\n", &opts).unwrap();
        assert_eq!(v.as_elements().unwrap()[0].path("b"), Value::Int(2));
    }

    #[test]
    fn errors_on_unterminated_quote() {
        assert!(from_csv("a\n\"oops\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn to_csv_rejects_non_tabular_values() {
        assert!(to_csv(&Value::Int(1)).is_err());
        assert!(to_csv(&sqlpp_value::bag![1i64]).is_err());
    }
}
