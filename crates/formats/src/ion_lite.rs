//! `ion-lite`: a compact binary tag-length-value encoding.
//!
//! The paper's format-independence tenet names binary formats — CBOR and
//! Amazon Ion — among the encodings a SQL++ query must work over
//! unchanged. We cannot ship those libraries, so this module implements
//! the closest synthetic equivalent (see DESIGN.md §4): a self-describing
//! binary TLV format with the exact type repertoire of the SQL++ data
//! model, including the pieces JSON lacks — bags, MISSING, exact decimals
//! and blobs. It exercises the same code path a real Ion/CBOR binding
//! would: bytes in, `Value` out, queries unchanged.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! value   := tag payload
//! tag     : u8   0=missing 1=null 2=false 3=true 4=int 5=float
//!                6=decimal 7=string 8=bytes 9=array 10=bag 11=tuple
//! int     : varint-zigzag i64
//! float   : 8 bytes IEEE-754
//! decimal : varint-zigzag i128 mantissa, varint u32 scale
//! string  : varint len, UTF-8 bytes
//! bytes   : varint len, raw bytes
//! array   : varint count, values…
//! bag     : varint count, values…
//! tuple   : varint count, (string value)…
//! ```

use sqlpp_value::{Decimal, Tuple, Value};

use crate::error::FormatError;

const TAG_MISSING: u8 = 0;
const TAG_NULL: u8 = 1;
const TAG_FALSE: u8 = 2;
const TAG_TRUE: u8 = 3;
const TAG_INT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_DECIMAL: u8 = 6;
const TAG_STRING: u8 = 7;
const TAG_BYTES: u8 = 8;
const TAG_ARRAY: u8 = 9;
const TAG_BAG: u8 = 10;
const TAG_TUPLE: u8 = 11;

/// Encodes a value to ion-lite bytes.
pub fn to_ion_lite(v: &Value) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode(v, &mut buf);
    buf
}

/// Decodes one ion-lite value; the whole buffer must be consumed.
pub fn from_ion_lite(mut data: &[u8]) -> Result<Value, FormatError> {
    let v = decode(&mut data, 0)?;
    if !data.is_empty() {
        return Err(FormatError::parse("ion-lite", "trailing bytes", 0));
    }
    Ok(v)
}

/// Decodes one ion-lite value from the front of `data` and returns it
/// with the number of bytes consumed — for framed streams (the WAL,
/// length-prefixed files) where trailing bytes belong to the *next*
/// value rather than being garbage. The caller is responsible for
/// deciding whether a nonzero remainder is legitimate.
pub fn from_ion_lite_prefix(data: &[u8]) -> Result<(Value, usize), FormatError> {
    let mut cursor = data;
    let v = decode(&mut cursor, 0)?;
    Ok((v, data.len() - cursor.len()))
}

fn put_varint(buf: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn put_zigzag(buf: &mut Vec<u8>, v: i128) {
    put_varint(buf, ((v << 1) ^ (v >> 127)) as u128);
}

/// Pops the first byte off the input cursor.
fn get_u8(data: &mut &[u8]) -> Result<u8, FormatError> {
    let (&first, rest) = data
        .split_first()
        .ok_or_else(|| FormatError::parse("ion-lite", "truncated value", 0))?;
    *data = rest;
    Ok(first)
}

/// Advances the input cursor past `n` bytes (caller has length-checked).
fn advance(data: &mut &[u8], n: usize) {
    *data = &data[n..];
}

fn get_varint(data: &mut &[u8]) -> Result<u128, FormatError> {
    let mut v: u128 = 0;
    let mut shift = 0u32;
    loop {
        if data.is_empty() {
            return Err(FormatError::parse("ion-lite", "truncated varint", 0));
        }
        if shift >= 128 {
            return Err(FormatError::parse("ion-lite", "varint overflow", 0));
        }
        let byte = get_u8(data)?;
        // The final chunk (shift 126) only has room for 2 of its 7
        // bits; shifting would silently drop the rest, making two
        // distinct encodings decode to the same value.
        if shift + 7 > 128 && (byte & 0x7f) >> (128 - shift) != 0 {
            return Err(FormatError::parse("ion-lite", "varint overflow", 0));
        }
        v |= ((byte & 0x7f) as u128) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn get_zigzag(data: &mut &[u8]) -> Result<i128, FormatError> {
    let raw = get_varint(data)?;
    Ok(((raw >> 1) as i128) ^ -((raw & 1) as i128))
}

fn encode(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::Missing => buf.push(TAG_MISSING),
        Value::Null => buf.push(TAG_NULL),
        Value::Bool(false) => buf.push(TAG_FALSE),
        Value::Bool(true) => buf.push(TAG_TRUE),
        Value::Int(i) => {
            buf.push(TAG_INT);
            put_zigzag(buf, *i as i128);
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            buf.extend_from_slice(&f.to_le_bytes());
        }
        Value::Decimal(d) => {
            buf.push(TAG_DECIMAL);
            put_zigzag(buf, d.mantissa());
            put_varint(buf, d.scale() as u128);
        }
        Value::Str(s) => {
            buf.push(TAG_STRING);
            put_varint(buf, s.len() as u128);
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.push(TAG_BYTES);
            put_varint(buf, b.len() as u128);
            buf.extend_from_slice(b);
        }
        Value::Array(items) => {
            buf.push(TAG_ARRAY);
            put_varint(buf, items.len() as u128);
            for item in items {
                encode(item, buf);
            }
        }
        Value::Bag(items) => {
            buf.push(TAG_BAG);
            put_varint(buf, items.len() as u128);
            for item in items {
                encode(item, buf);
            }
        }
        Value::Tuple(t) => {
            buf.push(TAG_TUPLE);
            put_varint(buf, t.len() as u128);
            for (name, value) in t.iter() {
                put_varint(buf, name.len() as u128);
                buf.extend_from_slice(name.as_bytes());
                encode(value, buf);
            }
        }
    }
}

/// Recursion depth guard: deeply nested adversarial inputs must error, not
/// blow the stack.
const MAX_DEPTH: usize = 256;

fn decode(data: &mut &[u8], depth: usize) -> Result<Value, FormatError> {
    if depth > MAX_DEPTH {
        return Err(FormatError::parse("ion-lite", "nesting too deep", 0));
    }
    let tag = get_u8(data)?;
    Ok(match tag {
        TAG_MISSING => Value::Missing,
        TAG_NULL => Value::Null,
        TAG_FALSE => Value::Bool(false),
        TAG_TRUE => Value::Bool(true),
        TAG_INT => {
            let raw = get_zigzag(data)?;
            Value::Int(
                i64::try_from(raw)
                    .map_err(|_| FormatError::parse("ion-lite", "integer out of range", 0))?,
            )
        }
        TAG_FLOAT => {
            if data.len() < 8 {
                return Err(FormatError::parse("ion-lite", "truncated float", 0));
            }
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&data[..8]);
            advance(data, 8);
            Value::Float(f64::from_le_bytes(raw))
        }
        TAG_DECIMAL => {
            let mantissa = get_zigzag(data)?;
            let scale = u32::try_from(get_varint(data)?)
                .map_err(|_| FormatError::parse("ion-lite", "decimal scale out of range", 0))?;
            if scale > 64 {
                return Err(FormatError::parse("ion-lite", "decimal scale too large", 0));
            }
            Value::Decimal(Decimal::new(mantissa, scale))
        }
        TAG_STRING => Value::Str(get_string(data)?),
        TAG_BYTES => {
            let len = get_len(data)?;
            if data.len() < len {
                return Err(FormatError::parse("ion-lite", "truncated bytes", 0));
            }
            let b = data[..len].to_vec();
            advance(data, len);
            Value::Bytes(b)
        }
        TAG_ARRAY | TAG_BAG => {
            let count = get_len(data)?;
            let mut items = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                items.push(decode(data, depth + 1)?);
            }
            if tag == TAG_ARRAY {
                Value::Array(items)
            } else {
                Value::Bag(items)
            }
        }
        TAG_TUPLE => {
            let count = get_len(data)?;
            let mut t = Tuple::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let name = get_string(data)?;
                let value = decode(data, depth + 1)?;
                // Preserve MISSING-freedom: a conforming encoder never
                // writes MISSING attribute values; tolerate and drop them.
                t.insert(name, value);
            }
            Value::Tuple(t)
        }
        other => {
            return Err(FormatError::parse(
                "ion-lite",
                format!("unknown tag {other}"),
                0,
            ));
        }
    })
}

fn get_len(data: &mut &[u8]) -> Result<usize, FormatError> {
    let len = usize::try_from(get_varint(data)?)
        .map_err(|_| FormatError::parse("ion-lite", "length out of range", 0))?;
    Ok(len)
}

fn get_string(data: &mut &[u8]) -> Result<String, FormatError> {
    let len = get_len(data)?;
    if data.len() < len {
        return Err(FormatError::parse("ion-lite", "truncated string", 0));
    }
    let s = std::str::from_utf8(&data[..len])
        .map_err(|_| FormatError::parse("ion-lite", "invalid UTF-8", 0))?
        .to_string();
    advance(data, len);
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::{array, bag, tuple};

    fn rt(v: Value) {
        let encoded = to_ion_lite(&v);
        let decoded = from_ion_lite(&encoded).unwrap();
        assert_eq!(decoded, v, "round trip failed");
    }

    #[test]
    fn round_trips_every_kind() {
        rt(Value::Missing);
        rt(Value::Null);
        rt(Value::Bool(true));
        rt(Value::Int(0));
        rt(Value::Int(i64::MIN));
        rt(Value::Int(i64::MAX));
        rt(Value::Float(3.25));
        rt(Value::Decimal("-12345.6789".parse().unwrap()));
        rt(Value::Str("héllo 😀".into()));
        rt(Value::Bytes(vec![0, 1, 255]));
        rt(array![1i64, "two", Value::Null]);
        rt(bag![array![1i64], bag![]]);
        rt(Value::Tuple(tuple! {
            "id" => 3i64,
            "nested" => Value::Tuple(tuple! {"x" => 1.5f64}),
        }));
    }

    #[test]
    fn bags_and_missing_survive_unlike_json() {
        // The capabilities JSON cannot express are exactly why the binary
        // format exists: bags stay bags, MISSING stays MISSING.
        let v = Value::Bag(vec![Value::Missing, Value::Int(1)]);
        let back = from_ion_lite(&to_ion_lite(&v)).unwrap();
        assert!(matches!(back, Value::Bag(_)));
        assert_eq!(back.as_elements().unwrap()[0], Value::Missing);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let encoded = to_ion_lite(&Value::Float(f64::NAN));
        match from_ion_lite(&encoded).unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_bytes() {
        assert!(from_ion_lite(&[]).is_err());
        assert!(from_ion_lite(&[99]).is_err()); // unknown tag
        assert!(from_ion_lite(&[TAG_STRING, 5, b'a']).is_err()); // truncated
        assert!(from_ion_lite(&[TAG_FLOAT, 1, 2]).is_err());
        // Trailing garbage.
        let mut ok = to_ion_lite(&Value::Int(1)).to_vec();
        ok.push(0);
        assert!(from_ion_lite(&ok).is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut bytes = Vec::new();
        for _ in 0..MAX_DEPTH + 10 {
            bytes.push(TAG_ARRAY);
            bytes.push(1);
        }
        bytes.push(TAG_NULL);
        assert!(from_ion_lite(&bytes).is_err());
    }

    #[test]
    fn encoding_is_compact() {
        // A small int costs 2 bytes; JSON costs at least 1 byte/char plus
        // structure. Sanity-check the claim used in the format benches.
        assert_eq!(to_ion_lite(&Value::Int(5)).len(), 2);
        assert_eq!(to_ion_lite(&Value::Null).len(), 1);
    }
}
