//! The session-server wire protocol: length-prefixed frames over a byte
//! stream (DESIGN.md §5.10).
//!
//! One frame per message, in both directions:
//!
//! ```text
//! frame    := len:u32le payload              (len = payload byte count)
//! request  := 0x01 qlen:varint query:utf8 nparams:varint param…
//! param    := plen:varint ion_lite-value     (one encoded value each)
//! response := 0x81 ion_lite-value            rows (the result value)
//!           | 0x82 str(code) str(message) ndiags:varint diag…
//!           | 0x83 str(message)              overloaded (shed / budget)
//! diag     := str(code) str(message) start:varint end:varint
//! str(x)   := len:varint utf8-bytes
//! ```
//!
//! Varints are the same LEB128 encoding [`crate::ion_lite`] uses, and
//! parameters/rows ride as self-contained ion-lite values — the binary
//! format the engine already round-trips losslessly (bags, MISSING,
//! decimals included), so the protocol adds no type repertoire of its
//! own. Frames are capped at [`MAX_FRAME_LEN`]; a peer announcing a
//! larger frame is malformed and the connection should be dropped rather
//! than buffered.

use std::io::{self, Read, Write};

use sqlpp_value::Value;

use crate::error::FormatError;
use crate::ion_lite::{from_ion_lite, to_ion_lite};

/// Hard upper bound on one frame's payload (64 MiB): large enough for
/// any sane result set, small enough that a corrupt or hostile length
/// prefix cannot make the server allocate unboundedly.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

const TAG_REQUEST: u8 = 0x01;
const TAG_ROWS: u8 = 0x81;
const TAG_ERROR: u8 = 0x82;
const TAG_OVERLOADED: u8 = 0x83;

/// A client→server message: one statement plus optional positional
/// parameters (bound to `?` placeholders in order).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The SQL++ statement text (query or DML).
    pub query: String,
    /// Positional parameter values, if any.
    pub params: Vec<Value>,
}

/// One diagnostic in an error response — the wire projection of the
/// engine's spanned `Diagnostic` type (code, message, byte span into the
/// request's query text). Kept as a plain struct here so the formats
/// crate stays independent of the syntax crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// Stable diagnostic code (`E_EXPECTED`, `E_PLAN`, …).
    pub code: String,
    /// Human-readable message.
    pub message: String,
    /// Span start (byte offset into the query text).
    pub start: usize,
    /// Span end (exclusive byte offset).
    pub end: usize,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The statement succeeded; the payload is its result value (a bag
    /// of rows for queries, a summary tuple like `{'inserted': n}` for
    /// DML).
    Rows(Value),
    /// The statement failed with a client-attributable error.
    Error {
        /// Coarse error class (`syntax`, `plan`, `eval`, `schema`, …).
        code: String,
        /// The rendered engine error.
        message: String,
        /// Structured diagnostics with spans, when the front end
        /// produced them (syntax/plan errors).
        diagnostics: Vec<WireDiagnostic>,
    },
    /// The server shed this request: admission control refused it or a
    /// per-session resource budget tripped mid-flight. The session and
    /// engine remain usable; the client may retry later.
    Overloaded {
        /// What was exhausted (`"admission queue full"`, the governor's
        /// structured budget report, …).
        message: String,
    },
}

// ---------------- varint / string primitives ----------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint(data: &mut &[u8]) -> Result<u64, FormatError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if shift >= 64 {
            return Err(FormatError::parse("wire", "varint overflow", 0));
        }
        let (&byte, rest) = data
            .split_first()
            .ok_or_else(|| FormatError::parse("wire", "truncated varint", 0))?;
        *data = rest;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_bytes<'a>(data: &mut &'a [u8]) -> Result<&'a [u8], FormatError> {
    let len = get_varint(data)? as usize;
    if data.len() < len {
        return Err(FormatError::parse("wire", "truncated bytes", 0));
    }
    let (head, rest) = data.split_at(len);
    *data = rest;
    Ok(head)
}

fn get_str(data: &mut &[u8]) -> Result<String, FormatError> {
    let bytes = get_bytes(data)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| FormatError::parse("wire", "invalid UTF-8 in string", 0))
}

fn get_tag(data: &mut &[u8]) -> Result<u8, FormatError> {
    let (&tag, rest) = data
        .split_first()
        .ok_or_else(|| FormatError::parse("wire", "empty payload", 0))?;
    *data = rest;
    Ok(tag)
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    let bytes = to_ion_lite(v);
    put_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(&bytes);
}

fn get_value(data: &mut &[u8]) -> Result<Value, FormatError> {
    from_ion_lite(get_bytes(data)?)
}

// ---------------- payload encoding ----------------

/// Encodes a request payload (frame body, without the length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + req.query.len());
    buf.push(TAG_REQUEST);
    put_str(&mut buf, &req.query);
    put_varint(&mut buf, req.params.len() as u64);
    for p in &req.params {
        put_value(&mut buf, p);
    }
    buf
}

/// Decodes a request payload. The whole buffer must be consumed.
pub fn decode_request(mut data: &[u8]) -> Result<Request, FormatError> {
    let data = &mut data;
    match get_tag(data)? {
        TAG_REQUEST => {}
        other => {
            return Err(FormatError::parse(
                "wire",
                format!("unknown request tag {other:#04x}"),
                0,
            ))
        }
    }
    let query = get_str(data)?;
    let nparams = get_varint(data)? as usize;
    let mut params = Vec::with_capacity(nparams.min(1024));
    for _ in 0..nparams {
        params.push(get_value(data)?);
    }
    if !data.is_empty() {
        return Err(FormatError::parse("wire", "trailing bytes in request", 0));
    }
    Ok(Request { query, params })
}

/// Encodes a response payload (frame body, without the length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    match resp {
        Response::Rows(v) => {
            buf.push(TAG_ROWS);
            put_value(&mut buf, v);
        }
        Response::Error {
            code,
            message,
            diagnostics,
        } => {
            buf.push(TAG_ERROR);
            put_str(&mut buf, code);
            put_str(&mut buf, message);
            put_varint(&mut buf, diagnostics.len() as u64);
            for d in diagnostics {
                put_str(&mut buf, &d.code);
                put_str(&mut buf, &d.message);
                put_varint(&mut buf, d.start as u64);
                put_varint(&mut buf, d.end as u64);
            }
        }
        Response::Overloaded { message } => {
            buf.push(TAG_OVERLOADED);
            put_str(&mut buf, message);
        }
    }
    buf
}

/// Decodes a response payload. The whole buffer must be consumed.
pub fn decode_response(mut data: &[u8]) -> Result<Response, FormatError> {
    let data = &mut data;
    let resp = match get_tag(data)? {
        TAG_ROWS => Response::Rows(get_value(data)?),
        TAG_ERROR => {
            let code = get_str(data)?;
            let message = get_str(data)?;
            let ndiags = get_varint(data)? as usize;
            let mut diagnostics = Vec::with_capacity(ndiags.min(1024));
            for _ in 0..ndiags {
                diagnostics.push(WireDiagnostic {
                    code: get_str(data)?,
                    message: get_str(data)?,
                    start: get_varint(data)? as usize,
                    end: get_varint(data)? as usize,
                });
            }
            Response::Error {
                code,
                message,
                diagnostics,
            }
        }
        TAG_OVERLOADED => Response::Overloaded {
            message: get_str(data)?,
        },
        other => {
            return Err(FormatError::parse(
                "wire",
                format!("unknown response tag {other:#04x}"),
                0,
            ))
        }
    };
    if !data.is_empty() {
        return Err(FormatError::parse("wire", "trailing bytes in response", 0));
    }
    Ok(resp)
}

// ---------------- framing over a byte stream ----------------

/// Writes one frame: a little-endian `u32` payload length, then the
/// payload, flushed.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed the session); a length prefix over
/// [`MAX_FRAME_LEN`] or a mid-frame EOF is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::{bag, tuple};

    #[test]
    fn request_round_trips_with_params() {
        let req = Request {
            query: "SELECT VALUE t.x FROM t AS t WHERE t.x > ?".to_string(),
            params: vec![
                Value::Int(3),
                Value::Null,
                Value::Missing,
                Value::Float(f64::NAN),
                Value::Tuple(tuple! {"a" => 1i64}),
            ],
        };
        let back = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(back.query, req.query);
        assert_eq!(back.params.len(), 5);
        // NaN breaks PartialEq; compare structurally.
        for (a, b) in back.params.iter().zip(&req.params) {
            assert!(sqlpp_value::cmp::deep_eq(a, b), "{a} != {b}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let rows = Response::Rows(bag![1i64, 2i64, 3i64]);
        assert_eq!(decode_response(&encode_response(&rows)).unwrap(), rows);

        let err = Response::Error {
            code: "syntax".to_string(),
            message: "expected FROM".to_string(),
            diagnostics: vec![WireDiagnostic {
                code: "E_EXPECTED".to_string(),
                message: "expected FROM, found EOF".to_string(),
                start: 7,
                end: 8,
            }],
        };
        assert_eq!(decode_response(&encode_response(&err)).unwrap(), err);

        let shed = Response::Overloaded {
            message: "admission queue full".to_string(),
        };
        assert_eq!(decode_response(&encode_response(&shed)).unwrap(), shed);
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err(), "over-cap length");

        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(b"abc"); // promises 8, delivers 3
        assert!(read_frame(&mut &buf[..]).is_err(), "mid-frame EOF");

        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes()[..2]); // EOF in prefix
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn garbage_payloads_are_structured_errors_not_panics() {
        assert!(decode_request(b"").is_err());
        assert!(decode_request(&[0xff, 0x01, 0x02]).is_err());
        assert!(decode_response(b"").is_err());
        assert!(decode_response(&[0x7f]).is_err());
        // A request with trailing junk is rejected.
        let mut ok = encode_request(&Request {
            query: "SELECT 1".to_string(),
            params: vec![],
        });
        ok.push(0);
        assert!(decode_request(&ok).is_err());
    }
}
