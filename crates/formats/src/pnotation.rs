//! The paper's self-describing object notation ("an object notation using
//! SQL literals", §II): bags `{{ … }}` / `<< … >>`, arrays `[ … ]`, tuples
//! `{ 'name': value }`, single-quoted strings, `null`, `MISSING`, booleans
//! and numbers. Every data listing in the paper is written in this
//! notation, so the compatibility kit and the listing gallery load their
//! fixtures through this module.
//!
//! Writing uses the [`sqlpp_value`] display impl (compact) or
//! [`sqlpp_value::to_pretty`] (listing-style), which this parser reads
//! back exactly — up to numeric *type*: like the paper's notation itself,
//! plain fractional literals are exact decimals, so a `Float` whose
//! rendering has no exponent reads back as a numerically equal `Decimal`
//! (value preserved, type widened). Exponent-form and `` `nan` ``/
//! `` `±inf` `` literals stay floats.

use sqlpp_value::{Decimal, Tuple, Value};

use crate::error::FormatError;

/// Parses one value in paper notation.
pub fn from_pnotation(text: &str) -> Result<Value, FormatError> {
    let mut p = PParser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_trivia();
    let v = p.value()?;
    p.skip_trivia();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Serializes compactly (one line).
pub fn to_pnotation(v: &Value) -> String {
    v.to_string()
}

/// Serializes in the indented style of the paper's listings.
pub fn to_pnotation_pretty(v: &Value) -> String {
    sqlpp_value::to_pretty(v)
}

struct PParser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PParser<'a> {
    fn err(&self, msg: impl Into<String>) -> FormatError {
        FormatError::parse("pnotation", msg, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // SQL-style comments appear in the paper's listings
                // (`-- no title`).
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn value(&mut self) -> Result<Value, FormatError> {
        self.skip_trivia();
        match self.peek() {
            Some(b'{') if self.peek2() == Some(b'{') => self.bag(b"{{", b"}}"),
            Some(b'<') if self.peek2() == Some(b'<') => self.bag(b"<<", b">>"),
            Some(b'{') => self.tuple(),
            Some(b'[') => self.array(),
            Some(b'\'') => Ok(Value::Str(self.string()?)),
            Some(b'-' | b'.' | b'0'..=b'9') => self.number(),
            Some(_) => self.word(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn expect_seq(&mut self, seq: &[u8]) -> Result<(), FormatError> {
        for &b in seq {
            if self.bump() != Some(b) {
                return Err(self.err(format!(
                    "expected {:?}",
                    std::str::from_utf8(seq).unwrap_or("?")
                )));
            }
        }
        Ok(())
    }

    fn at_seq(&self, seq: &[u8]) -> bool {
        self.bytes[self.pos..].starts_with(seq)
    }

    fn bag(&mut self, open: &[u8], close: &[u8]) -> Result<Value, FormatError> {
        self.expect_seq(open)?;
        let mut items = Vec::new();
        self.skip_trivia();
        if self.at_seq(close) {
            self.pos += close.len();
            return Ok(Value::Bag(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_trivia();
            if self.peek() == Some(b',') {
                self.bump();
                continue;
            }
            if self.at_seq(close) {
                self.pos += close.len();
                return Ok(Value::Bag(items));
            }
            return Err(self.err("expected ',' or bag close"));
        }
    }

    fn array(&mut self) -> Result<Value, FormatError> {
        self.expect_seq(b"[")?;
        let mut items = Vec::new();
        self.skip_trivia();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_trivia();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn tuple(&mut self) -> Result<Value, FormatError> {
        self.expect_seq(b"{")?;
        let mut t = Tuple::new();
        self.skip_trivia();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Tuple(t));
        }
        loop {
            self.skip_trivia();
            let name = self.string()?;
            self.skip_trivia();
            self.expect_seq(b":")?;
            let value = self.value()?;
            t.insert(name, value);
            self.skip_trivia();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Tuple(t)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, FormatError> {
        if self.peek() != Some(b'\'') {
            return Err(self.err("expected string"));
        }
        self.bump();
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(s);
                    }
                }
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("truncated \\u"))?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad hex"))?;
                        }
                        s.push(char::from_u32(code).ok_or_else(|| self.err("bad code point"))?);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(_) => {
                    // O(1) in-place decode; never re-validate the tail.
                    let start = self.pos - 1;
                    let ch = self.text[start..].chars().next().expect("in bounds");
                    self.pos = start + ch.len_utf8();
                    s.push(ch);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, FormatError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut is_int = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' => {
                    is_int = false;
                    self.bump();
                }
                b'e' | b'E' => {
                    is_int = false;
                    self.bump();
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_int {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        if !text.contains(['e', 'E']) {
            if let Ok(d) = text.parse::<Decimal>() {
                return Ok(Value::Decimal(d));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }

    fn word(&mut self) -> Result<Value, FormatError> {
        // Bare words: null, MISSING, true, false, hex bytes x'…', and the
        // float escapes `nan`/`±inf`.
        if self.peek() == Some(b'`') {
            self.bump();
            let start = self.pos;
            while self.peek().is_some() && self.peek() != Some(b'`') {
                self.bump();
            }
            let word = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("bad backtick literal"))?
                .to_string();
            self.expect_seq(b"`")?;
            return match word.as_str() {
                "nan" => Ok(Value::Float(f64::NAN)),
                "+inf" => Ok(Value::Float(f64::INFINITY)),
                "-inf" => Ok(Value::Float(f64::NEG_INFINITY)),
                other => Err(self.err(format!("unknown literal `{other}`"))),
            };
        }
        if (self.peek() == Some(b'x') || self.peek() == Some(b'X')) && self.peek2() == Some(b'\'') {
            self.bump();
            self.bump();
            let mut bytes = Vec::new();
            loop {
                match self.bump() {
                    Some(b'\'') => return Ok(Value::Bytes(bytes)),
                    Some(hi) => {
                        let lo = self.bump().ok_or_else(|| self.err("truncated hex"))?;
                        let h = (hi as char)
                            .to_digit(16)
                            .ok_or_else(|| self.err("bad hex digit"))?;
                        let l = (lo as char)
                            .to_digit(16)
                            .ok_or_else(|| self.err("bad hex digit"))?;
                        bytes.push((h * 16 + l) as u8);
                    }
                    None => return Err(self.err("unterminated hex literal")),
                }
            }
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let word =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad word"))?;
        match word.to_ascii_lowercase().as_str() {
            "null" => Ok(Value::Null),
            "missing" => Ok(Value::Missing),
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            other => Err(self.err(format!("unexpected word {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::{bag, tuple};

    #[test]
    fn parses_listing_1_shape() {
        let text = r#"
        {{
            {
                'id': 3,
                'name': 'Bob Smith',
                'title': null,
                'projects': [
                    {'name': 'Serverless Query'},
                    {'name': 'OLAP Security'}
                ]
            },
            {
                'id': 4,
                'name': 'Susan Smith',
                'title': 'Manager',
                'projects': []
            }
        }}
        "#;
        let v = from_pnotation(text).unwrap();
        let elems = v.as_elements().unwrap();
        assert_eq!(elems.len(), 2);
        assert_eq!(elems[0].path("title"), Value::Null);
        assert_eq!(
            elems[0].path("projects").index(0).path("name"),
            Value::Str("Serverless Query".into())
        );
    }

    #[test]
    fn comments_in_listings_are_skipped() {
        // Listing 7 contains `-- no title`.
        let text = "{{ {'id': 3, 'name': 'Bob'} -- no title\n , {'id': 4} }}";
        let v = from_pnotation(text).unwrap();
        assert_eq!(v.as_elements().unwrap().len(), 2);
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = bag![
            Value::Tuple(tuple! {
                "id" => 3i64,
                "title" => Value::Null,
                "scores" => bag![1i64, 2i64],
            }),
            Value::Str("it's".into()),
            Value::Bool(false),
            Value::Bytes(vec![0xab]),
            Value::Decimal("0.001".parse().unwrap()),
        ];
        assert_eq!(from_pnotation(&to_pnotation(&v)).unwrap(), v);
        assert_eq!(from_pnotation(&to_pnotation_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn floats_read_back_numerically_equal_as_decimals() {
        // Documented lossiness: the notation types plain fractions as
        // exact decimals, so Float(2.5) widens on the way back.
        let v = Value::Float(2.5);
        let back = from_pnotation(&to_pnotation(&v)).unwrap();
        assert_eq!(back, Value::Decimal("2.5".parse().unwrap()));
        assert!(sqlpp_value::cmp::deep_eq(&back, &v));
    }

    #[test]
    fn angle_bag_syntax() {
        assert_eq!(from_pnotation("<<1, 2>>").unwrap(), bag![1i64, 2i64]);
    }

    #[test]
    fn missing_keyword_parses() {
        assert_eq!(from_pnotation("MISSING").unwrap(), Value::Missing);
        assert_eq!(
            from_pnotation("{{MISSING, null}}").unwrap(),
            Value::Bag(vec![Value::Missing, Value::Null])
        );
    }

    #[test]
    fn special_floats() {
        assert!(matches!(from_pnotation("`nan`").unwrap(), Value::Float(f) if f.is_nan()));
        assert_eq!(
            from_pnotation("`-inf`").unwrap(),
            Value::Float(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["{{", "{'a' 1}", "'oops", "{{1,}}", "bogus", "[1", ""] {
            assert!(from_pnotation(bad).is_err(), "{bad:?} should fail");
        }
    }
}
