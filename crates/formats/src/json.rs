//! A hand-written RFC 8259 JSON reader/writer for the SQL++ data model.
//!
//! Mapping (format independence, §I tenet 5): JSON objects → tuples
//! (duplicate keys preserved), JSON arrays → arrays, `null` → NULL.
//! JSON has no bag, so bags serialize as arrays (the standard lossy choice
//! every SQL++ engine makes when emitting JSON); integers without
//! fraction/exponent → Int, fractional numbers → exact Decimal, exponent
//! form → Float.

use std::fmt::Write as _;

use sqlpp_value::{Decimal, Tuple, Value};

use crate::error::FormatError;

/// Parses one JSON value.
pub fn from_json(text: &str) -> Result<Value, FormatError> {
    let mut p = JsonParser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Parses a stream of whitespace/newline-separated JSON values (JSON Lines)
/// into a bag — the natural way to load a collection of documents.
pub fn from_json_lines(text: &str) -> Result<Value, FormatError> {
    let mut p = JsonParser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut items = Vec::new();
    loop {
        p.skip_ws();
        if p.pos == p.bytes.len() {
            break;
        }
        items.push(p.value()?);
    }
    Ok(Value::Bag(items))
}

/// Serializes a value as JSON. MISSING inside collections is skipped (it
/// cannot be represented); a top-level MISSING serializes as `null`.
/// Non-finite floats serialize as `null` (JSON has no NaN/Infinity).
pub fn to_json(v: &Value) -> String {
    let mut s = String::new();
    write_json(v, &mut s);
    s
}

fn write_json(v: &Value, out: &mut String) {
    match v {
        Value::Missing | Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if *f == f.trunc() && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Decimal(d) => {
            let _ = write!(out, "{d}");
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Bytes(b) => {
            // Bytes have no JSON form; use a lowercase hex string.
            out.push('"');
            for byte in b {
                let _ = write!(out, "{byte:02x}");
            }
            out.push('"');
        }
        Value::Array(items) | Value::Bag(items) => {
            out.push('[');
            let mut first = true;
            for item in items {
                if item.is_missing() {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                write_json(item, out);
            }
            out.push(']');
        }
        Value::Tuple(t) => {
            out.push('{');
            for (i, (name, value)) in t.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(name, out);
                out.push(':');
                write_json(value, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: impl Into<String>) -> FormatError {
        FormatError::parse("json", msg, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), FormatError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, FormatError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, FormatError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal (expected {word})")))
        }
    }

    fn object(&mut self) -> Result<Value, FormatError> {
        self.expect(b'{')?;
        let mut t = Tuple::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Tuple(t));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            t.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Tuple(t)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, FormatError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, FormatError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        s.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(b) if b < 0x80 => s.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: decode in place from the source
                    // str (O(1) — never re-validate the remaining input).
                    let start = self.pos - 1;
                    let ch = self.text[start..].chars().next().expect("in bounds");
                    self.pos = start + ch.len_utf8();
                    s.push(ch);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, FormatError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            v = v * 16
                + (d as char)
                    .to_digit(16)
                    .ok_or_else(|| self.err("invalid hex digit"))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, FormatError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut is_int = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' => {
                    is_int = false;
                    self.bump();
                }
                b'e' | b'E' => {
                    is_int = false;
                    self.bump();
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        if is_int {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        if !text.contains(['e', 'E']) {
            if let Ok(d) = text.parse::<Decimal>() {
                return Ok(Value::Decimal(d));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::{array, tuple};

    #[test]
    fn parses_scalars() {
        assert_eq!(from_json("42").unwrap(), Value::Int(42));
        assert_eq!(from_json("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_json("true").unwrap(), Value::Bool(true));
        assert_eq!(from_json("null").unwrap(), Value::Null);
        assert_eq!(from_json("\"hi\"").unwrap(), Value::Str("hi".into()));
        assert_eq!(
            from_json("3.14").unwrap(),
            Value::Decimal("3.14".parse().unwrap())
        );
        assert_eq!(from_json("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn parses_structures() {
        let v = from_json(r#"{"id": 3, "projects": [{"name": "OLAP"}, null]}"#).unwrap();
        let expected = Value::Tuple(tuple! {
            "id" => 3i64,
            "projects" => array![
                Value::Tuple(tuple! {"name" => "OLAP"}),
                Value::Null,
            ],
        });
        assert_eq!(v, expected);
    }

    #[test]
    fn duplicate_keys_are_preserved() {
        let v = from_json(r#"{"x": 1, "x": 2}"#).unwrap();
        let t = v.as_tuple().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("x"), Some(&Value::Int(1)));
    }

    #[test]
    fn string_escapes_and_unicode() {
        assert_eq!(
            from_json(r#""a\nb\tA""#).unwrap(),
            Value::Str("a\nb\tA".into())
        );
        // Surrogate pair: 😀
        assert_eq!(from_json(r#""😀""#).unwrap(), Value::Str("😀".into()));
        assert_eq!(from_json("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "\"abc",
            "tru",
            "01x",
            "{\"a\" 1}",
            "[1 2]",
            "",
            "1 2",
        ] {
            assert!(from_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn round_trips() {
        for src in [
            r#"{"id":3,"name":"Bob","title":null,"projects":["a","b"]}"#,
            "[1,2.5,true,null,\"x\"]",
            "{}",
            "[]",
        ] {
            let v = from_json(src).unwrap();
            assert_eq!(from_json(&to_json(&v)).unwrap(), v);
        }
    }

    #[test]
    fn bags_serialize_as_arrays_and_missing_is_skipped() {
        let v = Value::Bag(vec![Value::Int(1), Value::Missing, Value::Int(2)]);
        assert_eq!(to_json(&v), "[1,2]");
        assert_eq!(to_json(&Value::Missing), "null");
    }

    #[test]
    fn json_lines_loads_a_collection() {
        let v = from_json_lines("{\"a\":1}\n{\"a\":2}\n").unwrap();
        assert_eq!(v.as_elements().unwrap().len(), 2);
        assert!(matches!(v, Value::Bag(_)));
    }

    #[test]
    fn big_integers_fall_back_gracefully() {
        let v = from_json("99999999999999999999").unwrap();
        // Parsed exactly as a (large) decimal, not rounded through f64.
        assert_eq!(v, Value::Decimal("99999999999999999999".parse().unwrap()));
    }
}
