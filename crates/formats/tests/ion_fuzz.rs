//! Decoder robustness fuzzing for the ion-lite binary format.
//!
//! Two adversary families, both seeded and deterministic:
//!
//! 1. **byte soup** — random byte strings fed straight into the decoder;
//! 2. **bit-flipped valid encodings** — encode a generated value, flip
//!    one bit (or splice random bytes), decode.
//!
//! The contract under test: `from_ion_lite` returns `Ok` only for
//! byte-exact canonical encodings, and every rejection is a structured
//! `FormatError` — never a panic, never an abort. Accepted mutations
//! must decode to a value that re-encodes canonically (no two distinct
//! byte strings decode to the same value and both round-trip).

use sqlpp_formats::ion_lite::{from_ion_lite, from_ion_lite_prefix, to_ion_lite};
use sqlpp_testkit::prop::values::any_value;
use sqlpp_testkit::prop::Source;
use sqlpp_testkit::Rng;
use sqlpp_value::Value;

/// Decode inside `catch_unwind`: a panic is the one outcome the fuzz
/// families exist to rule out.
fn decode_no_panic(bytes: &[u8]) -> Option<Value> {
    let owned = bytes.to_vec();
    let result = std::panic::catch_unwind(move || from_ion_lite(&owned).ok());
    match result {
        Ok(v) => v,
        Err(_) => panic!("decoder panicked on {} bytes: {:?}", bytes.len(), bytes),
    }
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = Rng::new(0xB18_F00D);
    for case in 0..4096 {
        let len = (rng.next_u64() % 64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Accidental hits must decode to stable, re-encodable values.
        if let Some(v) = decode_no_panic(&bytes) {
            let back = from_ion_lite(&to_ion_lite(&v))
                .unwrap_or_else(|e| panic!("case {case}: accepted value won't round-trip: {e}"));
            assert!(sqlpp_value::cmp::deep_eq(&back, &v), "case {case}");
        }
    }
}

#[test]
fn bit_flipped_valid_encodings_error_not_panic() {
    let gen = any_value();
    let mut rng = Rng::new(0x1077_F11D);
    for case in 0..512 {
        let mut src = Source::random(rng.next_u64());
        let value = gen.generate(&mut src);
        let bytes = to_ion_lite(&value);
        if bytes.is_empty() {
            continue;
        }
        // One single-bit flip per case, position seeded.
        let mut flipped = bytes.clone();
        let pos = (rng.next_u64() % bytes.len() as u64) as usize;
        let bit = 1u8 << (rng.next_u64() % 8);
        flipped[pos] ^= bit;
        // A flip may still decode (e.g. inside a string or mantissa, or
        // producing a non-canonical scale that normalizes on re-encode);
        // what matters is that whatever is accepted is itself a
        // well-formed value that round-trips.
        if let Some(v) = decode_no_panic(&flipped) {
            let reencoded = to_ion_lite(&v);
            let back = from_ion_lite(&reencoded)
                .unwrap_or_else(|e| panic!("case {case}: accepted value won't round-trip: {e}"));
            assert!(
                sqlpp_value::cmp::deep_eq(&back, &v),
                "case {case}: flip at {pos} decoded to an unstable value"
            );
        }
    }
}

#[test]
fn truncations_and_extensions_error_not_panic() {
    let gen = any_value();
    let mut rng = Rng::new(0x7A11_CAFE);
    for _ in 0..128 {
        let mut src = Source::random(rng.next_u64());
        let bytes = to_ion_lite(&gen.generate(&mut src));
        // Every proper prefix must be rejected (truncation) without
        // panicking; the whole buffer must decode.
        for cut in 0..bytes.len() {
            assert!(
                decode_no_panic(&bytes[..cut]).is_none(),
                "cut {cut} accepted"
            );
        }
        assert!(decode_no_panic(&bytes).is_some());
        // Trailing garbage is rejected by from_ion_lite but accepted by
        // the prefix decoder, which reports the true boundary.
        let mut extended = bytes.clone();
        extended.push(rng.next_u64() as u8);
        assert!(from_ion_lite(&extended).is_err(), "trailing byte accepted");
        let (v, used) = from_ion_lite_prefix(&extended).expect("prefix decode");
        assert_eq!(used, bytes.len());
        assert_eq!(to_ion_lite(&v), bytes);
    }
}

#[test]
fn oversized_varint_chunks_are_rejected_consistently() {
    // A 19-byte varint whose final chunk carries bits beyond bit 127.
    // Before the overflow fix these bits were silently dropped, so two
    // distinct byte strings decoded to the same length header.
    // 18 continuation bytes of 0x80 put the final chunk at shift 126;
    // any final byte > 0x03 overflows u128.
    let mut bytes = vec![3u8]; // TAG_INT
    bytes.extend(std::iter::repeat(0x80).take(18));
    bytes.push(0x04); // bit 128 — out of range
    assert!(
        from_ion_lite(&bytes).is_err(),
        "overflowing varint accepted"
    );

    // The maximal in-range final chunk still decodes (or fails for a
    // structured reason other than a panic).
    let mut max = vec![3u8];
    max.extend(std::iter::repeat(0xFF).take(18));
    max.push(0x03);
    let _ = decode_no_panic(&max);
}
