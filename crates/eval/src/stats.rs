//! Execution statistics — the observability layer under `EXPLAIN ANALYZE`.
//!
//! The paper stresses *inspectable* semantics; [`ExecStats`] is the
//! inspectable counterpart for performance: per-phase wall times
//! (parse/lower/optimize/eval) plus per-operator and engine-wide counters
//! (rows scanned, bindings produced, groups built, dedupe/set-op probes,
//! MISSING propagations, subquery invocations, peak live bindings).
//!
//! Collection is gated by [`crate::EvalConfig::collect_stats`] and costs
//! nothing when off: the evaluator holds an `Option<StatsCollector>` and
//! every counter update sits behind that single discriminant check.
//! Per-operator entries are keyed by the operator's *pre-order plan index*
//! (its position in [`sqlpp_plan::CoreQuery::preorder_ops`]), which is
//! stable across plan clones and optimizer rewrites — unlike node
//! addresses, which alias after drops. The evaluator registers the plan it
//! is about to run ([`StatsCollector::register_plan`]); any operator
//! evaluated outside a registered plan (direct `value_op` calls in tests)
//! gets a fresh index past the registered range.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::time::Duration;

use sqlpp_plan::{CoreOp, CoreQuery};

/// How an operator's expressions were evaluated, for `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExprMode {
    /// The operator evaluated no expressions (or none were recorded).
    #[default]
    None,
    /// Every expression ran as compiled bytecode.
    Bytecode,
    /// Every expression fell back to the tree-walking interpreter.
    TreeWalk,
    /// Some expressions compiled, some fell back.
    Mixed,
}

/// Counters for one operator node (inclusive of its children).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// How many times the operator was evaluated (re-invocations under
    /// correlation count individually).
    pub calls: u64,
    /// Total rows (bindings or values) the operator emitted across calls.
    pub rows_out: u64,
    /// Total wall time across calls, in nanoseconds, including children.
    pub ns: u64,
    /// High-water mark of rows this operator held materialized at once
    /// (zero for fully streaming operators).
    pub peak_rows: u64,
    /// Batches the operator emitted through the batch pull protocol —
    /// zero means every pull was row-at-a-time.
    pub batches: u64,
    /// Whether this operator's expressions ran as bytecode or tree-walk.
    pub expr_mode: ExprMode,
    /// Whether this pipeline breaker spilled part of its working set to
    /// disk (always `false` for streaming operators and for breakers that
    /// stayed within budget).
    pub spilled: bool,
}

/// A finished statistics snapshot: phase wall times plus counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Wall time spent parsing, in nanoseconds (filled by the engine).
    pub parse_ns: u64,
    /// Wall time spent lowering to Core, in nanoseconds.
    pub lower_ns: u64,
    /// Wall time spent in the optimizer, in nanoseconds.
    pub optimize_ns: u64,
    /// Wall time spent evaluating, in nanoseconds.
    pub eval_ns: u64,
    /// Elements iterated by FROM scans (including UNPIVOT pairs). Under
    /// the streaming executor this counts *pulled* elements, so a
    /// short-circuited `LIMIT k` scan reports O(k), not the source size.
    pub rows_scanned: u64,
    /// Bindings emitted by FROM operators.
    pub bindings_produced: u64,
    /// Groups materialized by GROUP BY (and window partitions).
    pub groups_built: u64,
    /// `deep_eq` confirmations performed by DISTINCT/UNION dedup.
    pub dedupe_probes: u64,
    /// `deep_eq` confirmations performed by INTERSECT/EXCEPT matching.
    pub setop_probes: u64,
    /// Type errors absorbed as MISSING in permissive mode (§IV-B case 2).
    pub missing_propagations: u64,
    /// Nested-plan executions (subqueries, EXISTS, coerced SQL
    /// subqueries).
    pub subquery_invocations: u64,
    /// Join probe work: ON evaluations (nested-loop joins) plus hash
    /// bucket candidate confirmations (hash joins). An uncorrelated
    /// equi-join should show `join_probes ≤ L + R`.
    pub join_probes: u64,
    /// Rows inserted into hash-join build tables.
    pub join_build_rows: u64,
    /// Times a join's right side was re-evaluated beyond its first
    /// evaluation — zero for a hash join, `L - 1` for a nested loop.
    pub right_rescans: u64,
    /// High-water mark of rows held live across *all* pipeline-breaker
    /// buffers simultaneously — the number a spill policy would act on.
    /// Streaming plans keep this far below the source cardinality.
    pub peak_live_bindings: u64,
    /// Buffer admissions the resource governor refused over the memory
    /// budget (zero when no budget is set).
    pub budget_denials: u64,
    /// Real deadline/cancellation inspections the governor performed
    /// (the amortized skips between them are not counted).
    pub cancel_checks: u64,
    /// High-water mark of rows the governor had admitted at once — equals
    /// `peak_live_bindings` when both are tracked, but is maintained
    /// independently so budgets work with stats collection off.
    pub peak_budget_used: u64,
    /// The memory budget in effect (rows), if one was set — lets
    /// `EXPLAIN ANALYZE` render `used/limit`.
    pub mem_budget: Option<u64>,
    /// The wall-clock deadline in effect (milliseconds), if one was set.
    pub time_budget_ms: Option<u64>,
    /// The byte-denominated memory budget in effect, if one was set.
    pub mem_bytes_budget: Option<u64>,
    /// High-water mark of estimated bytes the governor had admitted at
    /// once (zero when no spill-aware breaker accounted bytes).
    pub peak_budget_bytes: u64,
    /// Spill files (Grace partitions + sorted runs) created by this run.
    pub spill_partitions: u64,
    /// Total bytes written to spill files by this run.
    pub spill_bytes_written: u64,
    /// K-way merge passes performed by external sorts, the final pass
    /// included — at least 1 whenever a sort spilled, more when the
    /// run count exceeded the merge fan-in (zero without spilling).
    pub merge_passes: u64,
    /// Non-empty batches emitted through the batch pull protocol across
    /// all instrumented operators (zero for a fully row-at-a-time run).
    pub batches_produced: u64,
    /// Expressions compiled to bytecode for this run.
    pub exprs_compiled: u64,
    /// Expressions that fell back to the tree-walking interpreter
    /// (uncovered forms: subqueries, EXISTS, collection aggregates).
    pub exprs_fallback: u64,
    /// Per-operator counters, keyed by pre-order plan index (see
    /// [`sqlpp_plan::CoreQuery::preorder_ops`]).
    pub ops: HashMap<u32, OpStats>,
}

impl ExecStats {
    /// Per-operator counters for the node at pre-order plan index
    /// `index`, if it ran.
    pub fn op_at(&self, index: u32) -> Option<&OpStats> {
        self.ops.get(&index)
    }

    /// The engine-wide counters as stable `(name, value)` pairs — the
    /// export format benches attach to their JSON reports.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rows_scanned", self.rows_scanned),
            ("bindings_produced", self.bindings_produced),
            ("groups_built", self.groups_built),
            ("dedupe_probes", self.dedupe_probes),
            ("setop_probes", self.setop_probes),
            ("missing_propagations", self.missing_propagations),
            ("subquery_invocations", self.subquery_invocations),
            ("join_probes", self.join_probes),
            ("join_build_rows", self.join_build_rows),
            ("right_rescans", self.right_rescans),
            ("peak_live_bindings", self.peak_live_bindings),
            ("budget_denials", self.budget_denials),
            ("cancel_checks", self.cancel_checks),
            ("peak_budget_used", self.peak_budget_used),
            ("batches_produced", self.batches_produced),
            ("exprs_compiled", self.exprs_compiled),
            ("exprs_fallback", self.exprs_fallback),
            ("spill_partitions", self.spill_partitions),
            ("spill_bytes_written", self.spill_bytes_written),
            ("merge_passes", self.merge_passes),
        ]
    }

    /// Renders the phase times and counters as the two-line summary that
    /// `EXPLAIN ANALYZE` appends under the operator tree.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "phases: parse {} | lower {} | optimize {} | eval {}\n",
            fmt_ns(self.parse_ns),
            fmt_ns(self.lower_ns),
            fmt_ns(self.optimize_ns),
            fmt_ns(self.eval_ns),
        ));
        out.push_str("counters:");
        for (name, value) in self.counters() {
            out.push_str(&format!(" {name}={value}"));
        }
        out.push('\n');
        if self.mem_budget.is_some()
            || self.time_budget_ms.is_some()
            || self.mem_bytes_budget.is_some()
        {
            out.push_str("budget:");
            if let Some(limit) = self.mem_budget {
                out.push_str(&format!(
                    " mem {}/{} rows (denials {})",
                    self.peak_budget_used, limit, self.budget_denials
                ));
            }
            if let Some(limit) = self.mem_bytes_budget {
                if self.mem_budget.is_some() {
                    out.push_str(" |");
                }
                out.push_str(&format!(" mem {}/{} bytes", self.peak_budget_bytes, limit));
            }
            if let Some(ms) = self.time_budget_ms {
                if self.mem_budget.is_some() || self.mem_bytes_budget.is_some() {
                    out.push_str(" |");
                }
                out.push_str(&format!(
                    " deadline {}ms (checks {})",
                    ms, self.cancel_checks
                ));
            }
            out.push('\n');
        }
        if self.spill_partitions > 0 || self.spill_bytes_written > 0 || self.merge_passes > 0 {
            out.push_str(&format!(
                "spill: {} partition(s), {} byte(s) written, {} merge pass(es)\n",
                self.spill_partitions, self.spill_bytes_written, self.merge_passes
            ));
        }
        out
    }
}

/// Formats nanoseconds human-readably (`1.23ms`, `45.6us`, `789ns`).
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// The evaluator-side accumulator. Interior-mutable (`Cell`/`RefCell`)
/// because the interpreter threads `&self`; single-threaded by
/// construction (the evaluator is not `Sync`).
#[derive(Debug, Default)]
pub struct StatsCollector {
    rows_scanned: Cell<u64>,
    bindings_produced: Cell<u64>,
    groups_built: Cell<u64>,
    dedupe_probes: Cell<u64>,
    setop_probes: Cell<u64>,
    missing_propagations: Cell<u64>,
    subquery_invocations: Cell<u64>,
    join_probes: Cell<u64>,
    join_build_rows: Cell<u64>,
    right_rescans: Cell<u64>,
    /// Rows currently held live across all tracked buffers.
    live_bindings: Cell<u64>,
    /// High-water mark of `live_bindings`.
    peak_live_bindings: Cell<u64>,
    /// Node address → pre-order plan index, filled by [`register_plan`]
    /// (plus overflow entries for unregistered nodes). The address is
    /// only ever used as a lookup handle while the plan is alive; the
    /// *index* is what snapshots carry.
    ///
    /// [`register_plan`]: StatsCollector::register_plan
    op_index: RefCell<HashMap<usize, u32>>,
    next_op_index: Cell<u32>,
    ops: RefCell<HashMap<u32, OpStats>>,
    batches_produced: Cell<u64>,
    exprs_compiled: Cell<u64>,
    exprs_fallback: Cell<u64>,
}

impl StatsCollector {
    /// Assigns every operator of `plan` its pre-order index. Called by
    /// the evaluator once per top-level run, before any operator
    /// executes, so recorded keys match what
    /// [`CoreQuery::preorder_ops`] enumerates.
    pub fn register_plan(&self, plan: &CoreQuery) {
        let mut map = self.op_index.borrow_mut();
        for op in plan.preorder_ops() {
            let next = map.len() as u32;
            map.entry(std::ptr::from_ref(op) as usize).or_insert(next);
        }
        self.next_op_index.set(map.len() as u32);
    }

    /// The stats key for an operator node: its registered pre-order
    /// index, or a fresh index past the registered range when the node
    /// was never registered (operators run outside a `CoreQuery`).
    pub fn key_for(&self, op: &CoreOp) -> u32 {
        let ptr = std::ptr::from_ref(op) as usize;
        if let Some(&i) = self.op_index.borrow().get(&ptr) {
            return i;
        }
        let i = self.next_op_index.get();
        self.next_op_index.set(i + 1);
        self.op_index.borrow_mut().insert(ptr, i);
        i
    }

    /// Records one operator evaluation: `rows` emitted over `elapsed`.
    pub fn record_op(&self, key: u32, rows: u64, elapsed: Duration) {
        let mut ops = self.ops.borrow_mut();
        let e = ops.entry(key).or_default();
        e.calls += 1;
        e.rows_out += rows;
        e.ns += elapsed.as_nanos() as u64;
    }

    /// Counts `batches` non-empty batched pulls emitted by an operator.
    pub fn record_op_batches(&self, key: u32, batches: u64) {
        let mut ops = self.ops.borrow_mut();
        let e = ops.entry(key).or_default();
        e.batches += batches;
    }

    /// Records whether an operator's expression ran as bytecode
    /// (`compiled`) or fell back to the tree-walker; repeated calls with
    /// differing modes merge to [`ExprMode::Mixed`].
    pub fn record_op_expr_mode(&self, key: u32, compiled: bool) {
        let mode = if compiled {
            ExprMode::Bytecode
        } else {
            ExprMode::TreeWalk
        };
        let mut ops = self.ops.borrow_mut();
        let e = ops.entry(key).or_default();
        e.expr_mode = match (e.expr_mode, mode) {
            (ExprMode::None, m) => m,
            (old, m) if old == m => old,
            _ => ExprMode::Mixed,
        };
    }

    /// Marks an operator as having spilled part of its working set to
    /// disk (sticky for the run).
    pub fn record_op_spilled(&self, key: u32) {
        let mut ops = self.ops.borrow_mut();
        let e = ops.entry(key).or_default();
        e.spilled = true;
    }

    /// Raises an operator's materialization high-water mark to at least
    /// `rows`.
    pub fn record_peak_rows(&self, key: u32, rows: u64) {
        let mut ops = self.ops.borrow_mut();
        let e = ops.entry(key).or_default();
        e.peak_rows = e.peak_rows.max(rows);
    }

    /// Counts `n` rows entering a tracked materialization buffer.
    pub fn buffer_grow(&self, n: u64) {
        let live = self.live_bindings.get() + n;
        self.live_bindings.set(live);
        if live > self.peak_live_bindings.get() {
            self.peak_live_bindings.set(live);
        }
    }

    /// Counts `n` rows leaving a tracked materialization buffer.
    pub fn buffer_shrink(&self, n: u64) {
        self.live_bindings
            .set(self.live_bindings.get().saturating_sub(n));
    }

    /// Counts elements iterated by a FROM scan.
    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.set(self.rows_scanned.get() + n);
    }

    /// Counts bindings emitted by FROM operators.
    pub fn add_bindings_produced(&self, n: u64) {
        self.bindings_produced.set(self.bindings_produced.get() + n);
    }

    /// Counts groups (or window partitions) materialized.
    pub fn add_groups_built(&self, n: u64) {
        self.groups_built.set(self.groups_built.get() + n);
    }

    /// Counts one dedup `deep_eq` confirmation.
    pub fn add_dedupe_probes(&self, n: u64) {
        self.dedupe_probes.set(self.dedupe_probes.get() + n);
    }

    /// Counts one set-op `deep_eq` confirmation.
    pub fn add_setop_probes(&self, n: u64) {
        self.setop_probes.set(self.setop_probes.get() + n);
    }

    /// Counts a type error absorbed as MISSING (permissive mode).
    pub fn add_missing_propagation(&self) {
        self.missing_propagations
            .set(self.missing_propagations.get() + 1);
    }

    /// Counts a nested-plan execution.
    pub fn add_subquery_invocation(&self) {
        self.subquery_invocations
            .set(self.subquery_invocations.get() + 1);
    }

    /// Counts join probe work (ON evaluations / hash candidate checks).
    pub fn add_join_probes(&self, n: u64) {
        self.join_probes.set(self.join_probes.get() + n);
    }

    /// Counts rows inserted into a hash-join build table.
    pub fn add_join_build_rows(&self, n: u64) {
        self.join_build_rows.set(self.join_build_rows.get() + n);
    }

    /// Counts a re-evaluation of a join's right side.
    pub fn add_right_rescans(&self, n: u64) {
        self.right_rescans.set(self.right_rescans.get() + n);
    }

    /// Counts non-empty batches emitted through the batch pull protocol.
    pub fn add_batches_produced(&self, n: u64) {
        self.batches_produced.set(self.batches_produced.get() + n);
    }

    /// Counts an expression compiled to bytecode.
    pub fn add_expr_compiled(&self) {
        self.exprs_compiled.set(self.exprs_compiled.get() + 1);
    }

    /// Counts an expression that fell back to the tree-walker.
    pub fn add_expr_fallback(&self) {
        self.exprs_fallback.set(self.exprs_fallback.get() + 1);
    }

    /// Snapshots the counters into an [`ExecStats`] (phase times zeroed —
    /// the engine fills those).
    pub fn snapshot(&self) -> ExecStats {
        ExecStats {
            parse_ns: 0,
            lower_ns: 0,
            optimize_ns: 0,
            eval_ns: 0,
            rows_scanned: self.rows_scanned.get(),
            bindings_produced: self.bindings_produced.get(),
            groups_built: self.groups_built.get(),
            dedupe_probes: self.dedupe_probes.get(),
            setop_probes: self.setop_probes.get(),
            missing_propagations: self.missing_propagations.get(),
            subquery_invocations: self.subquery_invocations.get(),
            join_probes: self.join_probes.get(),
            join_build_rows: self.join_build_rows.get(),
            right_rescans: self.right_rescans.get(),
            peak_live_bindings: self.peak_live_bindings.get(),
            batches_produced: self.batches_produced.get(),
            exprs_compiled: self.exprs_compiled.get(),
            exprs_fallback: self.exprs_fallback.get(),
            ops: self.ops.borrow().clone(),
            // Governor counters are filled by the evaluator (the governor
            // owns them so budgets work with stats collection off).
            ..ExecStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_accumulates_and_snapshots() {
        let c = StatsCollector::default();
        c.add_rows_scanned(10);
        c.add_rows_scanned(5);
        c.add_dedupe_probes(3);
        c.add_missing_propagation();
        c.record_op(42, 7, Duration::from_nanos(100));
        c.record_op(42, 7, Duration::from_nanos(50));
        let s = c.snapshot();
        assert_eq!(s.rows_scanned, 15);
        assert_eq!(s.dedupe_probes, 3);
        assert_eq!(s.missing_propagations, 1);
        let op = s.op_at(42).unwrap();
        assert_eq!((op.calls, op.rows_out, op.ns), (2, 14, 150));
    }

    #[test]
    fn summary_lists_every_counter() {
        let c = StatsCollector::default();
        c.add_setop_probes(9);
        let s = c.snapshot();
        let text = s.render_summary();
        assert!(text.contains("setop_probes=9"));
        assert!(text.contains("phases: parse"));
        for (name, _) in s.counters() {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn budget_line_renders_only_when_limits_are_set() {
        let mut s = StatsCollector::default().snapshot();
        assert!(!s.render_summary().contains("budget:"));
        s.mem_budget = Some(1000);
        s.peak_budget_used = 400;
        s.budget_denials = 2;
        let text = s.render_summary();
        assert!(
            text.contains("budget: mem 400/1000 rows (denials 2)"),
            "{text}"
        );
        s.time_budget_ms = Some(250);
        s.cancel_checks = 7;
        let text = s.render_summary();
        assert!(text.contains("| deadline 250ms (checks 7)"), "{text}");
    }

    #[test]
    fn spill_line_renders_only_when_spilling_happened() {
        let mut s = StatsCollector::default().snapshot();
        assert!(!s.render_summary().contains("spill:"));
        s.spill_partitions = 4;
        s.spill_bytes_written = 2048;
        s.merge_passes = 1;
        let text = s.render_summary();
        assert!(
            text.contains("spill: 4 partition(s), 2048 byte(s) written, 1 merge pass(es)"),
            "{text}"
        );
        s.mem_bytes_budget = Some(4096);
        s.peak_budget_bytes = 1024;
        let text = s.render_summary();
        assert!(text.contains("budget: mem 1024/4096 bytes"), "{text}");
    }

    #[test]
    fn buffer_gauge_tracks_the_high_water_mark_not_the_sum() {
        let c = StatsCollector::default();
        c.buffer_grow(10);
        c.buffer_shrink(10); // first buffer released before the second fills
        c.buffer_grow(4);
        c.buffer_grow(3);
        c.buffer_shrink(7);
        let s = c.snapshot();
        assert_eq!(s.peak_live_bindings, 10);
        c.record_peak_rows(0, 4);
        c.record_peak_rows(0, 2); // lower water never shrinks the peak
        assert_eq!(c.snapshot().op_at(0).unwrap().peak_rows, 4);
    }

    #[test]
    fn plan_registration_assigns_stable_preorder_indices() {
        use sqlpp_plan::{CoreExpr, CoreFrom, CoreQuery};
        let q = CoreQuery {
            op: CoreOp::Project {
                input: Box::new(CoreOp::From {
                    item: CoreFrom::Scan {
                        expr: CoreExpr::Global(vec!["c".into()]),
                        as_var: "x".into(),
                        at_var: None,
                    },
                }),
                expr: CoreExpr::Var("x".into()),
                distinct: false,
            },
        };
        let c = StatsCollector::default();
        c.register_plan(&q);
        let ops = q.preorder_ops();
        assert_eq!(c.key_for(ops[0]), 0, "root Project is index 0");
        assert_eq!(c.key_for(ops[1]), 1, "From child is index 1");
        // An unregistered node lands past the registered range.
        let stray = CoreOp::Single;
        assert_eq!(c.key_for(&stray), 2);
        assert_eq!(c.key_for(&stray), 2, "and keeps its index");
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
