//! Execution statistics — the observability layer under `EXPLAIN ANALYZE`.
//!
//! The paper stresses *inspectable* semantics; [`ExecStats`] is the
//! inspectable counterpart for performance: per-phase wall times
//! (parse/lower/optimize/eval) plus per-operator and engine-wide counters
//! (rows scanned, bindings produced, groups built, dedupe/set-op probes,
//! MISSING propagations, subquery invocations).
//!
//! Collection is gated by [`crate::EvalConfig::collect_stats`] and costs
//! nothing when off: the evaluator holds an `Option<StatsCollector>` and
//! every counter update sits behind that single discriminant check.
//! Per-operator entries are keyed by the *address* of the `CoreOp` node in
//! the plan that ran (see [`op_key`]), so annotating an `EXPLAIN` render
//! requires walking the same plan allocation — which is how
//! `sqlpp::Engine` uses it.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::time::Duration;

use sqlpp_plan::CoreOp;

/// Stable identity of an operator node within one plan: its address.
/// Valid only while that plan allocation is alive and unmoved — the
/// engine keeps the `CoreQuery` it executed and annotates the very same
/// tree.
pub fn op_key(op: &CoreOp) -> usize {
    std::ptr::from_ref(op) as usize
}

/// Counters for one operator node (inclusive of its children).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// How many times the operator was evaluated (re-invocations under
    /// correlation count individually).
    pub calls: u64,
    /// Total rows (bindings or values) the operator emitted across calls.
    pub rows_out: u64,
    /// Total wall time across calls, in nanoseconds, including children.
    pub ns: u64,
}

/// A finished statistics snapshot: phase wall times plus counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Wall time spent parsing, in nanoseconds (filled by the engine).
    pub parse_ns: u64,
    /// Wall time spent lowering to Core, in nanoseconds.
    pub lower_ns: u64,
    /// Wall time spent in the optimizer, in nanoseconds.
    pub optimize_ns: u64,
    /// Wall time spent evaluating, in nanoseconds.
    pub eval_ns: u64,
    /// Elements iterated by FROM scans (including UNPIVOT pairs).
    pub rows_scanned: u64,
    /// Bindings emitted by FROM operators.
    pub bindings_produced: u64,
    /// Groups materialized by GROUP BY (and window partitions).
    pub groups_built: u64,
    /// `deep_eq` confirmations performed by DISTINCT/UNION dedup.
    pub dedupe_probes: u64,
    /// `deep_eq` confirmations performed by INTERSECT/EXCEPT matching.
    pub setop_probes: u64,
    /// Type errors absorbed as MISSING in permissive mode (§IV-B case 2).
    pub missing_propagations: u64,
    /// Nested-plan executions (subqueries, EXISTS, coerced SQL
    /// subqueries).
    pub subquery_invocations: u64,
    /// Join probe work: ON evaluations (nested-loop joins) plus hash
    /// bucket candidate confirmations (hash joins). An uncorrelated
    /// equi-join should show `join_probes ≤ L + R`.
    pub join_probes: u64,
    /// Rows inserted into hash-join build tables.
    pub join_build_rows: u64,
    /// Times a join's right side was re-evaluated beyond its first
    /// evaluation — zero for a hash join, `L - 1` for a nested loop.
    pub right_rescans: u64,
    /// Per-operator counters, keyed by [`op_key`] of the plan node.
    pub ops: HashMap<usize, OpStats>,
}

impl ExecStats {
    /// Per-operator counters for a plan node, if it ran.
    pub fn op(&self, op: &CoreOp) -> Option<&OpStats> {
        self.ops.get(&op_key(op))
    }

    /// The engine-wide counters as stable `(name, value)` pairs — the
    /// export format benches attach to their JSON reports.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rows_scanned", self.rows_scanned),
            ("bindings_produced", self.bindings_produced),
            ("groups_built", self.groups_built),
            ("dedupe_probes", self.dedupe_probes),
            ("setop_probes", self.setop_probes),
            ("missing_propagations", self.missing_propagations),
            ("subquery_invocations", self.subquery_invocations),
            ("join_probes", self.join_probes),
            ("join_build_rows", self.join_build_rows),
            ("right_rescans", self.right_rescans),
        ]
    }

    /// Renders the phase times and counters as the two-line summary that
    /// `EXPLAIN ANALYZE` appends under the operator tree.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "phases: parse {} | lower {} | optimize {} | eval {}\n",
            fmt_ns(self.parse_ns),
            fmt_ns(self.lower_ns),
            fmt_ns(self.optimize_ns),
            fmt_ns(self.eval_ns),
        ));
        out.push_str("counters:");
        for (name, value) in self.counters() {
            out.push_str(&format!(" {name}={value}"));
        }
        out.push('\n');
        out
    }
}

/// Formats nanoseconds human-readably (`1.23ms`, `45.6us`, `789ns`).
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// The evaluator-side accumulator. Interior-mutable (`Cell`/`RefCell`)
/// because the interpreter threads `&self`; single-threaded by
/// construction (the evaluator is not `Sync`).
#[derive(Debug, Default)]
pub struct StatsCollector {
    rows_scanned: Cell<u64>,
    bindings_produced: Cell<u64>,
    groups_built: Cell<u64>,
    dedupe_probes: Cell<u64>,
    setop_probes: Cell<u64>,
    missing_propagations: Cell<u64>,
    subquery_invocations: Cell<u64>,
    join_probes: Cell<u64>,
    join_build_rows: Cell<u64>,
    right_rescans: Cell<u64>,
    ops: RefCell<HashMap<usize, OpStats>>,
}

impl StatsCollector {
    /// Records one operator evaluation: `rows` emitted over `elapsed`.
    pub fn record_op(&self, key: usize, rows: u64, elapsed: Duration) {
        let mut ops = self.ops.borrow_mut();
        let e = ops.entry(key).or_default();
        e.calls += 1;
        e.rows_out += rows;
        e.ns += elapsed.as_nanos() as u64;
    }

    /// Counts elements iterated by a FROM scan.
    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.set(self.rows_scanned.get() + n);
    }

    /// Counts bindings emitted by FROM operators.
    pub fn add_bindings_produced(&self, n: u64) {
        self.bindings_produced.set(self.bindings_produced.get() + n);
    }

    /// Counts groups (or window partitions) materialized.
    pub fn add_groups_built(&self, n: u64) {
        self.groups_built.set(self.groups_built.get() + n);
    }

    /// Counts one dedup `deep_eq` confirmation.
    pub fn add_dedupe_probes(&self, n: u64) {
        self.dedupe_probes.set(self.dedupe_probes.get() + n);
    }

    /// Counts one set-op `deep_eq` confirmation.
    pub fn add_setop_probes(&self, n: u64) {
        self.setop_probes.set(self.setop_probes.get() + n);
    }

    /// Counts a type error absorbed as MISSING (permissive mode).
    pub fn add_missing_propagation(&self) {
        self.missing_propagations
            .set(self.missing_propagations.get() + 1);
    }

    /// Counts a nested-plan execution.
    pub fn add_subquery_invocation(&self) {
        self.subquery_invocations
            .set(self.subquery_invocations.get() + 1);
    }

    /// Counts join probe work (ON evaluations / hash candidate checks).
    pub fn add_join_probes(&self, n: u64) {
        self.join_probes.set(self.join_probes.get() + n);
    }

    /// Counts rows inserted into a hash-join build table.
    pub fn add_join_build_rows(&self, n: u64) {
        self.join_build_rows.set(self.join_build_rows.get() + n);
    }

    /// Counts a re-evaluation of a join's right side.
    pub fn add_right_rescans(&self, n: u64) {
        self.right_rescans.set(self.right_rescans.get() + n);
    }

    /// Snapshots the counters into an [`ExecStats`] (phase times zeroed —
    /// the engine fills those).
    pub fn snapshot(&self) -> ExecStats {
        ExecStats {
            parse_ns: 0,
            lower_ns: 0,
            optimize_ns: 0,
            eval_ns: 0,
            rows_scanned: self.rows_scanned.get(),
            bindings_produced: self.bindings_produced.get(),
            groups_built: self.groups_built.get(),
            dedupe_probes: self.dedupe_probes.get(),
            setop_probes: self.setop_probes.get(),
            missing_propagations: self.missing_propagations.get(),
            subquery_invocations: self.subquery_invocations.get(),
            join_probes: self.join_probes.get(),
            join_build_rows: self.join_build_rows.get(),
            right_rescans: self.right_rescans.get(),
            ops: self.ops.borrow().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_accumulates_and_snapshots() {
        let c = StatsCollector::default();
        c.add_rows_scanned(10);
        c.add_rows_scanned(5);
        c.add_dedupe_probes(3);
        c.add_missing_propagation();
        c.record_op(42, 7, Duration::from_nanos(100));
        c.record_op(42, 7, Duration::from_nanos(50));
        let s = c.snapshot();
        assert_eq!(s.rows_scanned, 15);
        assert_eq!(s.dedupe_probes, 3);
        assert_eq!(s.missing_propagations, 1);
        let op = s.ops.get(&42).unwrap();
        assert_eq!((op.calls, op.rows_out, op.ns), (2, 14, 150));
    }

    #[test]
    fn summary_lists_every_counter() {
        let c = StatsCollector::default();
        c.add_setop_probes(9);
        let s = c.snapshot();
        let text = s.render_summary();
        assert!(text.contains("setop_probes=9"));
        assert!(text.contains("phases: parse"));
        for (name, _) in s.counters() {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
