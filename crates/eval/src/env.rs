//! Runtime binding environments.
//!
//! A FROM clause "delivers bindings of the variables to arbitrarily typed
//! values" (§III-A). [`Env`] is a persistent (shared-tail) list of such
//! bindings: extending an environment is O(1) and never disturbs the
//! parent, which is exactly what left-correlation and correlated
//! subqueries need.

use std::rc::Rc;

use sqlpp_value::Value;

/// A persistent chain of variable bindings.
#[derive(Clone, Default)]
pub struct Env {
    node: Option<Rc<Node>>,
}

struct Node {
    // `Rc<str>` so hot loops (one bind per scanned row) can pre-intern
    // the variable name once and pay a refcount bump per row instead of
    // a fresh `String` allocation.
    name: Rc<str>,
    value: Value,
    parent: Option<Rc<Node>>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Returns a new environment with `name` bound to `value`, shadowing
    /// any outer binding of the same name. Callers binding in a loop
    /// should create the `Rc<str>` once and pass clones.
    pub fn bind(&self, name: impl Into<Rc<str>>, value: Value) -> Env {
        Env {
            node: Some(Rc::new(Node {
                name: name.into(),
                value,
                parent: self.node.clone(),
            })),
        }
    }

    /// Innermost binding of `name`.
    pub fn get(&self, name: &str) -> Option<&Value> {
        let mut cur = self.node.as_deref();
        while let Some(n) = cur {
            if &*n.name == name {
                return Some(&n.value);
            }
            cur = n.parent.as_deref();
        }
        None
    }

    /// True when `name` is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterates over the *visible* bindings, innermost first, skipping
    /// shadowed ones. Used by the dynamic-disambiguation fallback.
    pub fn visible_bindings(&self) -> Vec<(&str, &Value)> {
        let mut seen: Vec<&str> = Vec::new();
        let mut out = Vec::new();
        let mut cur = self.node.as_deref();
        while let Some(n) = cur {
            if !seen.contains(&&*n.name) {
                seen.push(&n.name);
                out.push((&*n.name, &n.value));
            }
            cur = n.parent.as_deref();
        }
        out
    }
}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(self.visible_bindings().iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let env = Env::new().bind("e", Value::Int(1)).bind("p", Value::Int(2));
        assert_eq!(env.get("e"), Some(&Value::Int(1)));
        assert_eq!(env.get("p"), Some(&Value::Int(2)));
        assert_eq!(env.get("x"), None);
    }

    #[test]
    fn shadowing_is_innermost_first() {
        let outer = Env::new().bind("x", Value::Int(1));
        let inner = outer.bind("x", Value::Int(2));
        assert_eq!(inner.get("x"), Some(&Value::Int(2)));
        // The parent is untouched (persistence).
        assert_eq!(outer.get("x"), Some(&Value::Int(1)));
    }

    #[test]
    fn visible_bindings_skip_shadowed() {
        let env = Env::new()
            .bind("a", Value::Int(1))
            .bind("b", Value::Int(2))
            .bind("a", Value::Int(3));
        let vis = env.visible_bindings();
        assert_eq!(vis.len(), 2);
        assert_eq!(vis[0], ("a", &Value::Int(3)));
        assert_eq!(vis[1], ("b", &Value::Int(2)));
    }
}
