//! Evaluation errors and the paper's two typing modes (§IV).

use std::fmt;

/// "SQL++ allows processing to continue even when dynamic type errors
/// happen […] To support applications that want to catch type errors
/// early and stop processing when they happen, SQL++ also offers a
/// stop-on-error mode." (§I relaxation 2)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TypingMode {
    /// Type errors become MISSING and flow on; "healthy" data keeps
    /// processing (§IV-B case 2).
    #[default]
    Permissive,
    /// Stop-on-error: the first dynamic type error aborts the query.
    StrictError,
}

/// A runtime evaluation error.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A dynamic type error (only surfaced in strict mode).
    Type(String),
    /// A name that resolved neither to a variable, a catalog entry, nor a
    /// unique attribute of an in-scope binding.
    UnknownName(String),
    /// A positional parameter with no supplied value.
    MissingParam(usize),
    /// Unknown function.
    UnknownFunction(String),
    /// Numeric overflow or division by zero in strict mode.
    Arithmetic(String),
    /// A SQL scalar subquery produced more than one row (strict mode).
    Cardinality(String),
    /// Resource guard tripped (e.g. recursion depth).
    Resource(String),
    /// A governed resource budget (memory, nesting depth) was exceeded.
    /// Structured so clients can tell *which* budget and by how much.
    ResourceExhausted {
        /// Which budget: `"memory budget (rows)"`, `"eval nesting depth"`.
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// The usage that was refused (first value past the limit).
        used: u64,
    },
    /// The query was cancelled — deadline expiry or a tripped
    /// cancellation token.
    Cancelled {
        /// Human-readable cause (`"deadline of 50ms exceeded"`, …).
        reason: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Type(m) => write!(f, "type error: {m}"),
            EvalError::UnknownName(n) => write!(f, "unknown name: {n}"),
            EvalError::MissingParam(i) => {
                write!(f, "no value supplied for parameter ${i}")
            }
            EvalError::UnknownFunction(n) => write!(f, "unknown function: {n}"),
            EvalError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            EvalError::Cardinality(m) => write!(f, "cardinality error: {m}"),
            EvalError::Resource(m) => write!(f, "resource limit: {m}"),
            EvalError::ResourceExhausted {
                resource,
                limit,
                used,
            } => write!(
                f,
                "resource exhausted: {resource} limit {limit} exceeded (needed {used})"
            ),
            EvalError::Cancelled { reason } => write!(f, "query cancelled: {reason}"),
        }
    }
}

impl std::error::Error for EvalError {}
