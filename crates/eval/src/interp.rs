//! The Core-plan interpreter: clause-operators over binding streams.
//!
//! Semantics follow the paper's pipeline model (§V-B) and Pseudocodes 1–2:
//! FROM produces bindings of variables to *arbitrarily typed* values
//! (§III-A), each subsequent clause is a function over the binding stream,
//! and `SELECT VALUE` constructs the output collection. The
//! permissive/strict typing dichotomy (§IV) is threaded through every
//! operation via [`TypingMode`].

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use sqlpp_catalog::Catalog;
use sqlpp_plan::{
    AggFunc, Coercion, CompatMode, CoreExpr, CoreFrom, CoreJoinKind, CoreOp, CoreQuery, CoreSetOp,
    CoreSortKey, WindowDef, WindowFunc,
};
use sqlpp_syntax::ast::{BinOp, IsTest, UnOp};
use sqlpp_value::cmp::{deep_eq, sql_compare, sql_eq};
use sqlpp_value::hash::{hash_value, GroupKey};
use sqlpp_value::{Tuple, Value};

use crate::agg;
use crate::arith::{num_binop, num_neg, NumError, NumOp};
use crate::bytecode::{self, Compiled, Instr};
use crate::cast::{cast, CastTarget};
use crate::env::Env;
use crate::error::{EvalError, TypingMode};
use crate::functions;
use crate::govern::{FaultInjector, FaultSite, Limits, ResourceGovernor};
use crate::like::like_match;
use crate::spill::{
    approx_value_bytes, cmp_sort_keys, decode_keyed_record, encode_keyed_record, is_memory_refusal,
    ExternalSorter, GracePartitioner, SpillCodec, SpillConfig, SpillCtx, SpillRun,
};
use crate::stats::{ExecStats, StatsCollector};
use crate::stream::{
    boxed, empty, failed, from_vec, BindingStream, Governed, Instrumented, Limited, MatGauge,
    Stream, TrackedBuffer, ValueStream, BATCH_TICK_ROWS, DEFAULT_BATCH_SIZE,
};

/// Evaluator configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Permissive (type error → MISSING) vs stop-on-error (§IV).
    pub typing: TypingMode,
    /// SQL-compatibility mode: enables the COALESCE/MISSING exception and
    /// MISSING→NULL canonicalization of grouping keys (§IV-B).
    pub compat: CompatMode,
    /// Use the incremental-aggregation fast path for `COLL_*` over
    /// subqueries (§V-C licenses this; the `agg_pipeline_vs_materialize`
    /// benchmark measures it). Disabling forces conceptual
    /// materialization.
    pub pipeline_aggregates: bool,
    /// Collect [`ExecStats`] while evaluating (`EXPLAIN ANALYZE`). Off by
    /// default; when off the evaluator carries no collector and every
    /// instrumentation point is a single `Option` discriminant check.
    pub collect_stats: bool,
    /// Per-query resource limits (memory budget, deadline, cancellation,
    /// nesting depth). Unlimited by default; enforcement points are gated
    /// like `collect_stats`, so the unlimited path stays zero-cost.
    pub limits: Limits,
    /// Fault-injection hook for chaos testing. `None` in production.
    pub fault: Option<FaultInjector>,
    /// How many bindings each pipeline pull moves at once. `1` forces the
    /// row-at-a-time path everywhere (useful as a differential baseline);
    /// the default amortizes dynamic dispatch, governor ticks, and stat
    /// increments across [`DEFAULT_BATCH_SIZE`] rows.
    pub batch_size: usize,
    /// Compile plan expressions to flat bytecode once per run (with
    /// transparent fallback to the tree-walker for subqueries and other
    /// uncovered shapes). Disabling keeps the pure tree-walker — the
    /// differential baseline for the bytecode path.
    pub compile_exprs: bool,
    /// Out-of-core execution policy. `None` (the default) keeps the PR 5
    /// contract: a memory-budget overrun is a hard
    /// [`EvalError::ResourceExhausted`] refusal. `Some` lets every
    /// pipeline breaker spill to temp files instead — ORDER BY becomes an
    /// external merge-sort, GROUP BY and hash-join builds partition
    /// Grace-style (see `spill`).
    pub spill: Option<SpillConfig>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            typing: TypingMode::Permissive,
            compat: CompatMode::SqlCompat,
            pipeline_aggregates: true,
            collect_stats: false,
            limits: Limits::default(),
            fault: None,
            batch_size: DEFAULT_BATCH_SIZE,
            compile_exprs: true,
            spill: None,
        }
    }
}

/// The plan interpreter.
pub struct Evaluator<'a> {
    catalog: &'a Catalog,
    config: EvalConfig,
    params: Vec<Value>,
    stats: Option<StatsCollector>,
    /// Per-query resource enforcement. Always present; every check inside
    /// it is gated on whether the corresponding limit is actually set.
    /// The deadline clock starts here, at construction.
    govern: ResourceGovernor,
    /// Bytecode programs keyed by expression identity (`&CoreExpr` address
    /// within the plan being run — stable because `run` borrows the plan
    /// for its whole duration). Only successfully compiled expressions are
    /// stored; everything else misses and tree-walks.
    programs: RefCell<HashMap<usize, Rc<Compiled>>>,
    /// Fast gate for the per-expression cache lookup: false until
    /// `precompile` stores at least one program, so runs without bytecode
    /// pay one `Cell` read instead of a hash probe per expression.
    has_programs: Cell<bool>,
    /// The VM's value stack, reused across expression evaluations (taken
    /// and restored around each run so re-entrancy through `resolve_global`
    /// gets a fresh stack rather than a poisoned borrow).
    vm_stack: Cell<Vec<Value>>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over a catalog.
    pub fn new(catalog: &'a Catalog, config: EvalConfig) -> Self {
        let stats = config.collect_stats.then(StatsCollector::default);
        let govern = ResourceGovernor::new(&config.limits, config.fault.clone());
        Evaluator {
            catalog,
            config,
            params: Vec::new(),
            stats,
            govern,
            programs: RefCell::new(HashMap::new()),
            has_programs: Cell::new(false),
            vm_stack: Cell::new(Vec::new()),
        }
    }

    /// The governor enforcing this query's limits (counter visibility for
    /// tests and benches).
    pub fn governor(&self) -> &ResourceGovernor {
        &self.govern
    }

    /// Supplies positional parameter values.
    pub fn with_params(mut self, params: Vec<Value>) -> Self {
        self.params = params;
        self
    }

    /// Runs a query, producing its result value (a bag for SELECT
    /// queries, a tuple for top-level PIVOT).
    pub fn run(&self, q: &CoreQuery) -> Result<Value, EvalError> {
        if let Some(st) = &self.stats {
            // Per-operator stats are keyed by pre-order plan index.
            st.register_plan(q);
        }
        self.precompile(q);
        self.value_op(&q.op, &Env::new())
    }

    /// Compiles every scalar expression in the plan to bytecode, filling
    /// the program cache. Skipped under fault injection: the chaos tests
    /// pin tree-walker fault sites, and keeping the walker there means
    /// fault counts stay identical whether or not bytecode exists.
    fn precompile(&self, q: &CoreQuery) {
        if !self.config.compile_exprs || self.govern.injects_faults() {
            return;
        }
        let mut map = self.programs.borrow_mut();
        map.clear();
        q.for_each_expr(&mut |op, e| {
            let compiled = bytecode::compile(e);
            let is_program = matches!(compiled, Compiled::Program(_));
            if let Some(st) = &self.stats {
                if is_program {
                    st.add_expr_compiled();
                } else {
                    st.add_expr_fallback();
                }
                st.record_op_expr_mode(st.key_for(op), is_program);
            }
            if is_program {
                map.insert(e as *const CoreExpr as usize, Rc::new(compiled));
            }
        });
        self.has_programs.set(!map.is_empty());
    }

    /// Snapshots the statistics collected so far (phase times zeroed —
    /// the engine layers those in), merged with the governor's counters
    /// (budget denials, cancel checks, peak budget usage, limits in
    /// effect). `None` unless [`EvalConfig::collect_stats`] was set.
    pub fn stats_snapshot(&self) -> Option<ExecStats> {
        self.stats.as_ref().map(|st| {
            let mut s = st.snapshot();
            self.govern.fill_stats(&mut s);
            s
        })
    }

    /// Dynamic type error handling (§IV-B case 2): MISSING in permissive
    /// mode, an error in stop-on-error mode. The message is built lazily:
    /// in permissive mode — the hot path over dirty data — producing
    /// MISSING must cost no more than the operation it replaces, so no
    /// formatting or allocation happens there.
    fn type_err<M: FnOnce() -> String>(&self, msg: M) -> Result<Value, EvalError> {
        match self.config.typing {
            TypingMode::Permissive => {
                if let Some(st) = &self.stats {
                    st.add_missing_propagation();
                }
                Ok(Value::Missing)
            }
            TypingMode::StrictError => Err(EvalError::Type(msg())),
        }
    }

    // =================================================================
    // Operators
    // =================================================================

    /// Evaluates a value-producing operator, recording per-operator
    /// counters when stats collection is on. Times are inclusive of
    /// children (the renderer shows the tree, so self-time is derivable).
    ///
    /// This is also the governor's nesting choke point: every operator
    /// evaluation (including each per-row subquery invocation) passes
    /// through here, so the depth guard and the [`FaultSite::OperatorEval`]
    /// hook live in exactly one place, with the exit paired on all paths.
    fn value_op(&self, op: &CoreOp, env: &Env) -> Result<Value, EvalError> {
        self.govern.enter_nested()?;
        let result = if self.govern.injects_faults() {
            self.govern
                .fault_at(FaultSite::OperatorEval)
                .and_then(|()| self.value_op_timed(op, env))
        } else {
            self.value_op_timed(op, env)
        };
        self.govern.exit_nested();
        result
    }

    fn value_op_timed(&self, op: &CoreOp, env: &Env) -> Result<Value, EvalError> {
        let Some(st) = &self.stats else {
            return self.value_op_inner(op, env);
        };
        let start = std::time::Instant::now();
        let result = self.value_op_inner(op, env);
        let elapsed = start.elapsed();
        let rows = match &result {
            Ok(Value::Bag(items)) | Ok(Value::Array(items)) => items.len() as u64,
            Ok(_) => 1,
            Err(_) => 0,
        };
        st.record_op(st.key_for(op), rows, elapsed);
        result
    }

    fn value_op_inner(&self, op: &CoreOp, env: &Env) -> Result<Value, EvalError> {
        match op {
            CoreOp::Project {
                input,
                expr,
                distinct,
            } => {
                if *distinct {
                    // DISTINCT is a pipeline breaker: the projected rows
                    // materialize through a tracked buffer, then dedupe.
                    let mut buf =
                        TrackedBuffer::new(self.stats.as_ref(), self.mem_guard(), Some(op));
                    drain_batched(self.binding_stream(input, env), self.batch_size(), |b| {
                        buf.push(self.expr(expr, &b)?)
                    })?;
                    Ok(Value::Bag(dedupe(buf.into_vec(), self.stats.as_ref())))
                } else {
                    if let Some(result) = self.try_fused_project(input, expr, env) {
                        return result;
                    }
                    let mut out = Vec::new();
                    drain_batched(self.binding_stream(input, env), self.batch_size(), |b| {
                        out.push(self.expr(expr, &b)?);
                        Ok(())
                    })?;
                    Ok(Value::Bag(out))
                }
            }
            CoreOp::Pivot { input, value, name } => {
                let mut t = Tuple::new();
                drain_batched(self.binding_stream(input, env), self.batch_size(), |b| {
                    let n = self.expr(name, &b)?;
                    let v = self.expr(value, &b)?;
                    match n {
                        Value::Str(s) => t.insert(s, v),
                        Value::Missing | Value::Null => {}
                        other => {
                            // Permissive mode skips the pair; strict errors.
                            let _ = self.type_err(|| {
                                format!(
                                    "PIVOT attribute name must be a string, found {}",
                                    other.kind().name()
                                )
                            })?;
                        }
                    }
                    Ok(())
                })?;
                Ok(Value::Tuple(t))
            }
            CoreOp::SetOp {
                op: set_op,
                all,
                left,
                right,
            } => {
                let mut out = Vec::new();
                drain_batched(
                    self.set_op_stream(*set_op, *all, left, right, op, env),
                    self.batch_size(),
                    |v| {
                        out.push(v);
                        Ok(())
                    },
                )?;
                Ok(Value::Bag(out))
            }
            CoreOp::SortValues { input, keys } => {
                let out_var: Rc<str> = "$out".into();
                let gauge = MatGauge::new(self.stats.as_ref(), self.mem_guard(), Some(op));
                let mut sorter = ExternalSorter::new(
                    self.spill_ctx(),
                    keys,
                    ValueCodec,
                    gauge,
                    self.track_bytes(),
                );
                drain_batched(self.element_stream(input, env), self.batch_size(), |v| {
                    // The output element is visible as `$out`; if it is a
                    // tuple its attributes resolve dynamically.
                    let row_env = env.bind(out_var.clone(), v.clone());
                    let mut ks = Vec::with_capacity(keys.len());
                    for k in keys {
                        ks.push(self.expr(&k.expr, &row_env)?);
                    }
                    sorter.push(ks, v)
                })?;
                if sorter.spilled() {
                    self.mark_spilled(op);
                }
                Ok(Value::Bag(sorter.finish()?))
            }
            CoreOp::TopK {
                input,
                keys,
                limit,
                offset,
                on_values: true,
            } => {
                let out_var: Rc<str> = "$out".into();
                let rows = self.topk_rows(
                    op,
                    keys,
                    limit,
                    offset,
                    env,
                    || self.element_stream(input, env),
                    |v: &Value| {
                        let row_env = env.bind(out_var.clone(), v.clone());
                        let mut ks = Vec::with_capacity(keys.len());
                        for k in keys {
                            ks.push(self.expr(&k.expr, &row_env)?);
                        }
                        Ok(ks)
                    },
                    approx_value_bytes,
                )?;
                Ok(Value::Bag(rows))
            }
            CoreOp::LimitOffset {
                input,
                limit,
                offset,
            } => {
                // Bounds first: LIMIT 0 never constructs (or pulls) the
                // input at all.
                let (lim, off) = self.limit_offset(limit.as_ref(), offset.as_ref(), env)?;
                let mut out = Vec::new();
                if lim != Some(0) {
                    drain_batched(
                        Box::new(Limited::new(self.element_stream(input, env), off, lim)),
                        self.batch_size(),
                        |v| {
                            out.push(v);
                            Ok(())
                        },
                    )?;
                }
                Ok(Value::Bag(out))
            }
            CoreOp::With { bindings, body } => {
                let mut env = env.clone();
                for (name, q) in bindings {
                    let v = self.value_op(&q.op, &env)?;
                    env = env.bind(name.clone(), v);
                }
                self.value_op(body, &env)
            }
            // A binding-producing operator in value position only happens
            // for degenerate plans; expose the bindings as tuples.
            other => {
                let mut out = Vec::new();
                drain_batched(self.binding_stream(other, env), self.batch_size(), |_| {
                    out.push(Value::Tuple(Tuple::new()));
                    Ok(())
                })?;
                Ok(Value::Bag(out))
            }
        }
    }

    // =================================================================
    // Streams
    // =================================================================

    /// The governor, iff buffer admissions must consult it (memory budget
    /// or fault hook active) — the `Option` shape gauges gate on.
    fn mem_guard(&self) -> Option<&ResourceGovernor> {
        self.govern.as_memory_guard()
    }

    /// The spill context, iff the session opted into out-of-core
    /// execution. `None` keeps budget refusals hard.
    fn spill_ctx(&self) -> Option<SpillCtx<'_>> {
        self.config.spill.as_ref().map(|config| SpillCtx {
            config,
            govern: &self.govern,
        })
    }

    /// Whether breakers must account bytes (a byte-denominated budget is
    /// set) in addition to the row gauge, which stays the admission fast
    /// path.
    fn track_bytes(&self) -> bool {
        self.config.limits.memory_bytes.is_some()
    }

    /// Marks a breaker as having spilled in the per-operator stats (the
    /// `EXPLAIN ANALYZE` `spilled` tag).
    fn mark_spilled(&self, whole: &CoreOp) {
        if let Some(st) = &self.stats {
            st.record_op_spilled(st.key_for(whole));
        }
    }

    /// The elements of a value-producing operator as a lazy stream.
    /// Operators with a streaming shape (projection, LIMIT, UNION ALL,
    /// WITH bodies, set-op probe sides) yield elements as they are
    /// pulled; everything else falls back to [`Self::value_op`] and
    /// streams the materialized result.
    fn element_stream<'s>(&'s self, op: &'s CoreOp, env: &Env) -> ValueStream<'s> {
        if let Some(stream) = self.try_value_stream(op, env) {
            return stream;
        }
        match self.value_op(op, env) {
            Err(e) => failed(e),
            Ok(Value::Bag(items)) | Ok(Value::Array(items)) => from_vec(items),
            Ok(single) => boxed(std::iter::once(Ok(single))),
        }
    }

    /// A lazy element stream for operators that can produce one, or
    /// `None` when the operator must materialize (sort, pivot, grouping
    /// inputs, …) and [`Self::value_op`] should run instead.
    fn try_value_stream<'s>(&'s self, op: &'s CoreOp, env: &Env) -> Option<ValueStream<'s>> {
        let inner = self.try_value_stream_inner(op, env)?;
        let inner = match &self.stats {
            None => inner,
            Some(st) => Box::new(Instrumented::new(inner, st, op, false)) as ValueStream<'s>,
        };
        Some(match self.govern.as_watcher() {
            None => inner,
            Some(g) => Box::new(Governed::new(inner, g)),
        })
    }

    fn try_value_stream_inner<'s>(&'s self, op: &'s CoreOp, env: &Env) -> Option<ValueStream<'s>> {
        match op {
            CoreOp::Project {
                input,
                expr,
                distinct: false,
            } => Some(Box::new(ProjectStream {
                ev: self,
                expr,
                inner: self.binding_stream(input, env),
                buf: Vec::new(),
                done: false,
            })),
            CoreOp::LimitOffset {
                input,
                limit,
                offset,
            } => Some(
                match self.limit_offset(limit.as_ref(), offset.as_ref(), env) {
                    Err(e) => failed(e),
                    Ok((Some(0), _)) => empty(),
                    Ok((lim, off)) => {
                        Box::new(Limited::new(self.element_stream(input, env), off, lim))
                    }
                },
            ),
            CoreOp::SetOp {
                op: set_op,
                all,
                left,
                right,
            } => Some(self.set_op_stream(*set_op, *all, left, right, op, env)),
            CoreOp::With { bindings, body } => {
                let mut inner_env = env.clone();
                for (name, q) in bindings {
                    match self.value_op(&q.op, &inner_env) {
                        Ok(v) => inner_env = inner_env.bind(name.clone(), v),
                        Err(e) => return Some(failed(e)),
                    }
                }
                Some(self.element_stream(body, &inner_env))
            }
            _ => None,
        }
    }

    /// UNION/INTERSECT/EXCEPT as a stream. `UNION ALL` is fully streaming
    /// (left chained to right); every other shape materializes the build
    /// side (the right operand, or for de-duplicated UNION the whole
    /// input) through a tracked buffer, but INTERSECT/EXCEPT ALL still
    /// stream their probe (left) side.
    fn set_op_stream<'s>(
        &'s self,
        set_op: CoreSetOp,
        all: bool,
        left: &'s CoreOp,
        right: &'s CoreOp,
        whole: &CoreOp,
        env: &Env,
    ) -> ValueStream<'s> {
        match (set_op, all) {
            (CoreSetOp::Union, true) => boxed(
                self.element_stream(left, env)
                    .chain(self.element_stream(right, env)),
            ),
            (CoreSetOp::Union, false) => {
                let mut buf =
                    TrackedBuffer::new(self.stats.as_ref(), self.mem_guard(), Some(whole));
                for side in [left, right] {
                    if let Err(e) =
                        drain_batched(self.element_stream(side, env), self.batch_size(), |v| {
                            buf.push(v)
                        })
                    {
                        return failed(e);
                    }
                }
                from_vec(dedupe(buf.into_vec(), self.stats.as_ref()))
            }
            (CoreSetOp::Intersect, _) | (CoreSetOp::Except, _) => {
                // Build the right multiset, then stream the left through
                // it: INTERSECT keeps elements that consume a right
                // occurrence, EXCEPT keeps the ones that don't.
                let mut gauge = MatGauge::new(self.stats.as_ref(), self.mem_guard(), Some(whole));
                let mut rvals = Vec::new();
                if let Err(e) =
                    drain_batched(self.element_stream(right, env), self.batch_size(), |v| {
                        gauge.add(1)?;
                        rvals.push(v);
                        Ok(())
                    })
                {
                    return failed(e);
                }
                let mut pool = RightMultiset::new(rvals, self.stats.as_ref());
                let keep_matched = set_op == CoreSetOp::Intersect;
                let probe = self.element_stream(left, env).filter_map(move |v| {
                    let _hold = &gauge; // build rows stay live while probing
                    match v {
                        Err(e) => Some(Err(e)),
                        Ok(v) => {
                            if pool.take(&v) == keep_matched {
                                Some(Ok(v))
                            } else {
                                None
                            }
                        }
                    }
                });
                if all {
                    boxed(probe)
                } else {
                    let mut out = Vec::new();
                    for v in probe {
                        match v {
                            Ok(v) => out.push(v),
                            Err(e) => return failed(e),
                        }
                    }
                    from_vec(dedupe(out, self.stats.as_ref()))
                }
            }
        }
    }

    /// The bindings of a binding-producing operator as a lazy stream.
    /// Scans, filters, joins, LET, and Append stream row by row; Sort,
    /// Group, and Window are pipeline breakers that materialize through
    /// tracked buffers at construction and then stream the result.
    fn binding_stream<'s>(&'s self, op: &'s CoreOp, env: &Env) -> BindingStream<'s> {
        let inner = match &self.stats {
            None => self.binding_stream_inner(op, env),
            Some(st) => Box::new(Instrumented::new(
                self.binding_stream_inner(op, env),
                st,
                op,
                matches!(op, CoreOp::From { .. }),
            )) as BindingStream<'s>,
        };
        // Deadline/cancellation: tick per pull, only when a deadline or
        // token is attached — the ungoverned path takes the `None` arm.
        match self.govern.as_watcher() {
            None => inner,
            Some(g) => Box::new(Governed::new(inner, g)),
        }
    }

    fn binding_stream_inner<'s>(&'s self, op: &'s CoreOp, env: &Env) -> BindingStream<'s> {
        match op {
            CoreOp::Single => boxed(std::iter::once(Ok(env.clone()))),
            CoreOp::From { item } => self.from_stream(item, op, env),
            CoreOp::Filter { input, pred } => Box::new(FilterStream {
                ev: self,
                pred,
                inner: self.binding_stream(input, env),
                buf: Vec::new(),
                done: false,
            }),
            CoreOp::Group {
                input,
                keys,
                group_var,
                captured,
                emit_empty_group,
            } => match self.group(op, input, keys, group_var, captured, *emit_empty_group, env) {
                Ok(rows) => from_vec(rows),
                Err(e) => failed(e),
            },
            CoreOp::Append { inputs } => {
                let env = env.clone();
                boxed(
                    inputs
                        .iter()
                        .flat_map(move |i| self.binding_stream(i, &env)),
                )
            }
            CoreOp::Sort { input, keys } => match self.sort_bindings(op, input, keys, env) {
                Ok(rows) => from_vec(rows),
                Err(e) => failed(e),
            },
            CoreOp::TopK {
                input,
                keys,
                limit,
                offset,
                on_values: false,
            } => {
                let rows = self.topk_rows(
                    op,
                    keys,
                    limit,
                    offset,
                    env,
                    || self.binding_stream(input, env),
                    |b: &Env| {
                        let mut ks = Vec::with_capacity(keys.len());
                        for k in keys {
                            ks.push(self.expr(&k.expr, b)?);
                        }
                        Ok(ks)
                    },
                    env_bytes,
                );
                match rows {
                    Ok(rows) => from_vec(rows),
                    Err(e) => failed(e),
                }
            }
            CoreOp::LimitOffset {
                input,
                limit,
                offset,
            } => match self.limit_offset(limit.as_ref(), offset.as_ref(), env) {
                Err(e) => failed(e),
                Ok((Some(0), _)) => empty(),
                Ok((lim, off)) => Box::new(Limited::new(self.binding_stream(input, env), off, lim)),
            },
            CoreOp::Window { input, defs } => {
                // Window functions see whole partitions: materialize the
                // input, then rewrite rows def by def.
                let mut buf = TrackedBuffer::new(self.stats.as_ref(), self.mem_guard(), Some(op));
                if let Err(e) =
                    drain_batched(self.binding_stream(input, env), self.batch_size(), |b| {
                        buf.push(b)
                    })
                {
                    return failed(e);
                }
                let mut rows = buf.into_vec();
                for def in defs {
                    match self.window(rows, def) {
                        Ok(r) => rows = r,
                        Err(e) => return failed(e),
                    }
                }
                from_vec(rows)
            }
            other => failed(EvalError::Type(format!(
                "operator {other:?} does not produce bindings"
            ))),
        }
    }

    /// ORDER BY over bindings: a pipeline breaker — annotates each row
    /// with its key values through a gauge-tracked [`ExternalSorter`].
    /// Without spilling (or when the budget is never hit) this is the old
    /// buffer-and-stable-sort; under budget pressure with spilling enabled
    /// it becomes an external merge-sort over sorted runs.
    fn sort_bindings(
        &self,
        whole: &CoreOp,
        input: &CoreOp,
        keys: &[CoreSortKey],
        env: &Env,
    ) -> Result<Vec<Env>, EvalError> {
        let gauge = MatGauge::new(self.stats.as_ref(), self.mem_guard(), Some(whole));
        let mut sorter = ExternalSorter::new(
            self.spill_ctx(),
            keys,
            EnvCodec { base: env.clone() },
            gauge,
            self.track_bytes(),
        );
        drain_batched(self.binding_stream(input, env), self.batch_size(), |b| {
            let mut ks = Vec::with_capacity(keys.len());
            for k in keys {
                ks.push(self.expr(&k.expr, &b)?);
            }
            sorter.push(ks, b)
        })?;
        if sorter.spilled() {
            self.mark_spilled(whole);
        }
        sorter.finish()
    }

    /// Bounded-heap TopK over any row type: keeps the `limit + offset`
    /// least rows (per the shared sort comparator, ties by arrival order —
    /// the stable-sort outcome), so peak tracked memory is O(k) and the
    /// input is never materialized. `make_stream` is only called when the
    /// bound is nonzero: LIMIT 0 pulls nothing, like [`CoreOp::LimitOffset`].
    fn topk_rows<'s, T>(
        &'s self,
        whole: &CoreOp,
        keys: &[CoreSortKey],
        limit: &CoreExpr,
        offset: &Option<CoreExpr>,
        env: &Env,
        make_stream: impl FnOnce() -> Box<dyn Stream<T> + 's>,
        key_of: impl Fn(&T) -> Result<Vec<Value>, EvalError>,
        size_of: impl Fn(&T) -> u64,
    ) -> Result<Vec<T>, EvalError> {
        let (lim, off) = self.limit_offset(Some(limit), offset.as_ref(), env)?;
        let lim = lim.expect("top-k always carries a LIMIT");
        let n = lim.saturating_add(off);
        if n == 0 {
            return Ok(Vec::new());
        }
        let track_bytes = self.track_bytes();
        let mut gauge = MatGauge::new(self.stats.as_ref(), self.mem_guard(), Some(whole));
        let mut heap: std::collections::BinaryHeap<HeapEntry<'_, T>> =
            std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        drain_batched(make_stream(), self.batch_size(), |row| {
            let kv = key_of(&row)?;
            let bytes = if track_bytes {
                kv.iter().map(approx_value_bytes).sum::<u64>() + size_of(&row)
            } else {
                0
            };
            let entry = HeapEntry {
                keys,
                kv,
                seq,
                bytes,
                row,
            };
            seq += 1;
            if heap.len() < n {
                gauge.add_sized(1, bytes)?;
                heap.push(entry);
            } else if entry < *heap.peek().expect("heap is at capacity") {
                let evicted = heap.pop().expect("heap is at capacity");
                gauge.remove(1, evicted.bytes);
                gauge.add_sized(1, bytes)?;
                heap.push(entry);
            }
            Ok(())
        })?;
        let entries = heap.into_sorted_vec();
        drop(gauge);
        Ok(entries.into_iter().skip(off).map(|e| e.row).collect())
    }

    fn limit_offset(
        &self,
        limit: Option<&CoreExpr>,
        offset: Option<&CoreExpr>,
        env: &Env,
    ) -> Result<(Option<usize>, usize), EvalError> {
        let eval_count = |e: Option<&CoreExpr>| -> Result<Option<usize>, EvalError> {
            match e {
                None => Ok(None),
                Some(e) => match self.expr(e, env)? {
                    Value::Int(i) if i >= 0 => Ok(Some(i as usize)),
                    other => Err(EvalError::Type(format!(
                        "LIMIT/OFFSET must be a non-negative integer, found {other}"
                    ))),
                },
            }
        };
        Ok((eval_count(limit)?, eval_count(offset)?.unwrap_or(0)))
    }

    #[allow(clippy::too_many_arguments)]
    fn group(
        &self,
        whole: &CoreOp,
        input: &CoreOp,
        keys: &[(String, CoreExpr)],
        group_var: &str,
        captured: &[String],
        emit_empty_group: bool,
        env: &Env,
    ) -> Result<Vec<Env>, EvalError> {
        // Insertion-ordered grouping: HashMap for lookup, Vec for order.
        // Grouping is a pipeline breaker: every captured element is live
        // until the groups are emitted, tracked by the gauge. Under budget
        // pressure with spilling enabled, the accumulated elements scatter
        // to Grace partitions instead (and the rest of the stream follows
        // them straight to disk); each partition is then rebuilt in memory
        // — recursively re-partitioned on skew — so peak tracked memory
        // never exceeds the budget. The spilled path loses the in-memory
        // path's insertion order, which GROUP BY (a bag producer) never
        // promised.
        let ctx = self.spill_ctx();
        let track_bytes = self.track_bytes();
        let mut gauge = MatGauge::new(self.stats.as_ref(), self.mem_guard(), Some(whole));
        let mut index: HashMap<GroupKey, usize> = HashMap::new();
        let mut groups: Vec<(Vec<Value>, Vec<Value>)> = Vec::new(); // (keys, elements)
        let mut tracked = (0u64, 0u64); // rows, bytes held by the gauge
        let mut spill: Option<GracePartitioner> = None;
        drain_batched(self.binding_stream(input, env), self.batch_size(), |b| {
            let mut key_vals = Vec::with_capacity(keys.len());
            for (_, ke) in keys {
                let mut v = self.expr(ke, &b)?;
                // Grouping treats the two absent values alike (PartiQL's
                // `eqg`); the surfaced key is NULL. This also realizes the
                // §IV-B compatibility guarantee for GROUP BY queries.
                if v.is_missing() {
                    v = Value::Null;
                }
                key_vals.push(v);
            }
            // The group element: a tuple of the captured bindings
            // (Listing 14's {e: …, p: …} shape).
            let mut elem = Tuple::with_capacity(captured.len());
            for var in captured {
                if let Some(v) = b.get(var) {
                    elem.insert(var.clone(), v.clone());
                }
            }
            let elem = Value::Tuple(elem);
            if let Some(p) = &mut spill {
                let c = ctx.as_ref().expect("spilling implies a ctx");
                let rec = encode_keyed_record(&key_vals, elem);
                return p.write(c, &key_vals, &rec);
            }
            let bytes = if track_bytes {
                key_vals.iter().map(approx_value_bytes).sum::<u64>() + approx_value_bytes(&elem)
            } else {
                0
            };
            if let Err(e) = gauge.add_sized(1, bytes) {
                let Some(c) = ctx.as_ref() else {
                    return Err(e);
                };
                if !is_memory_refusal(&e) {
                    return Err(e);
                }
                // Budget hit: scatter everything accumulated so far (and
                // this row) to Grace partitions and release the budget.
                self.mark_spilled(whole);
                let mut p = GracePartitioner::new(c, 0)?;
                for (kv, elems) in groups.drain(..) {
                    for el in elems {
                        let rec = encode_keyed_record(&kv, el);
                        p.write(c, &kv, &rec)?;
                    }
                }
                index.clear();
                gauge.remove(tracked.0, tracked.1);
                tracked = (0, 0);
                let rec = encode_keyed_record(&key_vals, elem);
                p.write(c, &key_vals, &rec)?;
                spill = Some(p);
                return Ok(());
            }
            tracked.0 += 1;
            tracked.1 += bytes;
            match index.entry(GroupKey(key_vals.clone())) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    groups[*o.get()].1.push(elem);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(groups.len());
                    groups.push((key_vals, vec![elem]));
                }
            }
            Ok(())
        })?;
        if let Some(p) = spill {
            let c = ctx.as_ref().expect("spilling implies a ctx");
            drop(gauge);
            groups = self.regroup_partitions(whole, c, p.finish()?, track_bytes)?;
            return self.emit_groups(groups, keys, group_var, env);
        }
        // Ungrouped aggregation and the grand-total grouping set yield
        // exactly one group even over empty input (SQL).
        if emit_empty_group && groups.is_empty() {
            // The group's key values: whatever the (constant) key
            // expressions evaluate to with no rows — NULL placeholders
            // and GROUPING flags.
            let mut key_vals = Vec::with_capacity(keys.len());
            for (_, ke) in keys {
                key_vals.push(match ke {
                    CoreExpr::Const(v) => v.clone(),
                    _ => Value::Null,
                });
            }
            groups.push((key_vals, Vec::new()));
        }
        if let Some(st) = &self.stats {
            st.add_groups_built(groups.len() as u64);
        }
        self.emit_groups(groups, keys, group_var, env)
    }

    /// Binds each completed group's key aliases and `GROUP AS` variable —
    /// the tail both the in-memory and the spilled grouping paths share.
    fn emit_groups(
        &self,
        groups: Vec<(Vec<Value>, Vec<Value>)>,
        keys: &[(String, CoreExpr)],
        group_var: &str,
        env: &Env,
    ) -> Result<Vec<Env>, EvalError> {
        let mut out = Vec::with_capacity(groups.len());
        for (key_vals, elems) in groups {
            let mut genv = env.clone();
            for ((alias, _), v) in keys.iter().zip(key_vals) {
                genv = genv.bind(alias.clone(), v);
            }
            genv = genv.bind(group_var.to_string(), Value::Bag(elems));
            out.push(genv);
        }
        Ok(out)
    }

    /// Rebuilds spilled Grace partitions into completed groups, one
    /// partition at a time under a fresh gauge. A partition that alone
    /// exceeds the budget is re-partitioned with the next depth's seed
    /// (splitting hash-skewed keys apart); past `max_recursion` the
    /// refusal surfaces — identical-key skew cannot be split.
    fn regroup_partitions(
        &self,
        whole: &CoreOp,
        ctx: &SpillCtx<'_>,
        runs: Vec<SpillRun>,
        track_bytes: bool,
    ) -> Result<Vec<(Vec<Value>, Vec<Value>)>, EvalError> {
        let mut work: Vec<(SpillRun, u32)> = runs.into_iter().map(|r| (r, 1)).collect();
        let mut groups: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
        while let Some((run, depth)) = work.pop() {
            if run.records() == 0 {
                continue;
            }
            let mut reader = run.open(ctx)?;
            let mut gauge = MatGauge::new(self.stats.as_ref(), self.mem_guard(), Some(whole));
            let mut pidx: HashMap<GroupKey, usize> = HashMap::new();
            let mut pgroups: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
            let mut tracked = (0u64, 0u64);
            let mut overflowed = false;
            while let Some(rec) = reader.next(ctx)? {
                let (kv, elem) = decode_keyed_record(rec)?;
                let bytes = if track_bytes {
                    kv.iter().map(approx_value_bytes).sum::<u64>() + approx_value_bytes(&elem)
                } else {
                    0
                };
                if let Err(e) = gauge.add_sized(1, bytes) {
                    if !is_memory_refusal(&e) || depth > ctx.config.max_recursion {
                        return Err(e);
                    }
                    // Skewed partition: re-scatter it (including this
                    // record and the unread tail) under the next seed.
                    let mut p = GracePartitioner::new(ctx, u64::from(depth))?;
                    for (gkv, elems) in pgroups.drain(..) {
                        for el in elems {
                            let rec = encode_keyed_record(&gkv, el);
                            p.write(ctx, &gkv, &rec)?;
                        }
                    }
                    pidx.clear();
                    let rec = encode_keyed_record(&kv, elem);
                    p.write(ctx, &kv, &rec)?;
                    while let Some(rec) = reader.next(ctx)? {
                        let (kv2, elem2) = decode_keyed_record(rec)?;
                        let rec2 = encode_keyed_record(&kv2, elem2);
                        p.write(ctx, &kv2, &rec2)?;
                    }
                    gauge.remove(tracked.0, tracked.1);
                    for r in p.finish()? {
                        work.push((r, depth + 1));
                    }
                    overflowed = true;
                    break;
                }
                tracked.0 += 1;
                tracked.1 += bytes;
                match pidx.entry(GroupKey(kv.clone())) {
                    std::collections::hash_map::Entry::Occupied(o) => {
                        pgroups[*o.get()].1.push(elem);
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(pgroups.len());
                        pgroups.push((kv, vec![elem]));
                    }
                }
            }
            if overflowed {
                continue;
            }
            if let Some(st) = &self.stats {
                st.add_groups_built(pgroups.len() as u64);
            }
            groups.append(&mut pgroups);
        }
        Ok(groups)
    }

    /// Evaluates one window definition over the binding stream, returning
    /// the stream (original order preserved) with `def.var` bound on each
    /// row. SQL default frame semantics: whole partition without ORDER
    /// BY; RANGE UNBOUNDED PRECEDING..CURRENT ROW (peers included) with
    /// it.
    fn window(&self, rows: Vec<Env>, def: &WindowDef) -> Result<Vec<Env>, EvalError> {
        // Partition: insertion-ordered buckets of row indices.
        let mut index: HashMap<GroupKey, usize> = HashMap::new();
        let mut partitions: Vec<Vec<usize>> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let mut key = Vec::with_capacity(def.partition.len());
            for p in &def.partition {
                let mut v = self.expr(p, row)?;
                if v.is_missing() {
                    v = Value::Null; // absent keys partition together
                }
                key.push(v);
            }
            match index.entry(GroupKey(key)) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    partitions[*o.get()].push(i);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(partitions.len());
                    partitions.push(vec![i]);
                }
            }
        }
        if let Some(st) = &self.stats {
            // Window partitions are groups in the §V-B sense.
            st.add_groups_built(partitions.len() as u64);
        }
        let mut computed: Vec<Value> = vec![Value::Null; rows.len()];
        for partition in &partitions {
            // Order within the partition.
            let mut ordered: Vec<(Vec<Value>, usize)> = Vec::with_capacity(partition.len());
            for &i in partition {
                let mut ks = Vec::with_capacity(def.order.len());
                for k in &def.order {
                    ks.push(self.expr(&k.expr, &rows[i])?);
                }
                ordered.push((ks, i));
            }
            sort_annotated(&mut ordered, &def.order);
            // Peer groups under the ordering (all one group when
            // unordered).
            let peers_equal = |a: &[Value], b: &[Value]| {
                def.order.is_empty() || a.iter().zip(b).all(|(x, y)| deep_eq(x, y))
            };
            match def.func {
                WindowFunc::RowNumber => {
                    for (pos, (_, i)) in ordered.iter().enumerate() {
                        computed[*i] = Value::Int(pos as i64 + 1);
                    }
                }
                WindowFunc::Rank | WindowFunc::DenseRank => {
                    let mut rank = 0i64;
                    let mut dense = 0i64;
                    for (pos, (keys, i)) in ordered.iter().enumerate() {
                        let new_peer_group = pos == 0 || !peers_equal(keys, &ordered[pos - 1].0);
                        if new_peer_group {
                            rank = pos as i64 + 1;
                            dense += 1;
                        }
                        computed[*i] = Value::Int(match def.func {
                            WindowFunc::Rank => rank,
                            _ => dense,
                        });
                    }
                }
                WindowFunc::Lag | WindowFunc::Lead => {
                    let offset = match def.args.get(1) {
                        None => 1i64,
                        Some(e) => match self.expr(e, &rows[ordered[0].1])? {
                            Value::Int(o) if o >= 0 => o,
                            other => {
                                return Err(EvalError::Type(format!(
                                    "LAG/LEAD offset must be a non-negative \
                                     integer, found {other}"
                                )));
                            }
                        },
                    };
                    for (pos, (_, i)) in ordered.iter().enumerate() {
                        let neighbor = match def.func {
                            WindowFunc::Lag => (pos as i64) - offset,
                            _ => (pos as i64) + offset,
                        };
                        computed[*i] = if neighbor >= 0 && (neighbor as usize) < ordered.len() {
                            let j = ordered[neighbor as usize].1;
                            self.expr(&def.args[0], &rows[j])?
                        } else if let Some(default) = def.args.get(2) {
                            self.expr(default, &rows[*i])?
                        } else {
                            Value::Null
                        };
                    }
                }
                WindowFunc::Agg(func) => {
                    if def.order.is_empty() {
                        // Whole-partition aggregate, computed once.
                        let mut acc = agg::Accumulator::new(func);
                        for (_, i) in &ordered {
                            acc.push(&self.window_agg_input(def, *i, &rows)?);
                        }
                        let value = match acc.finish() {
                            Ok(v) => v,
                            Err(e) => self.agg_err(e)?,
                        };
                        for (_, i) in &ordered {
                            computed[*i] = value.clone();
                        }
                    } else {
                        // Running aggregate with peers included: compute
                        // at each peer-group boundary.
                        let mut acc = agg::Accumulator::new(func);
                        let mut pos = 0usize;
                        while pos < ordered.len() {
                            let mut end = pos + 1;
                            while end < ordered.len()
                                && peers_equal(&ordered[end].0, &ordered[pos].0)
                            {
                                end += 1;
                            }
                            for (_, i) in &ordered[pos..end] {
                                acc.push(&self.window_agg_input(def, *i, &rows)?);
                            }
                            let value = match acc.clone().finish() {
                                Ok(v) => v,
                                Err(e) => self.agg_err(e)?,
                            };
                            for (_, i) in &ordered[pos..end] {
                                computed[*i] = value.clone();
                            }
                            pos = end;
                        }
                    }
                }
            }
        }
        let var: std::rc::Rc<str> = def.var.as_str().into();
        Ok(rows
            .into_iter()
            .zip(computed)
            .map(|(row, v)| row.bind(var.clone(), v))
            .collect())
    }

    /// The per-row input of a windowed aggregate: the argument expression,
    /// or — for `COUNT(*) OVER (…)` — a constant that counts every row.
    fn window_agg_input(
        &self,
        def: &WindowDef,
        row: usize,
        rows: &[Env],
    ) -> Result<Value, EvalError> {
        match def.args.first() {
            Some(arg) => self.expr(arg, &rows[row]),
            None => Ok(Value::Int(1)),
        }
    }

    // =================================================================
    // FROM
    // =================================================================

    /// The binding stream of a FROM-item tree. `whole` is the enclosing
    /// `CoreOp::From`, used to attribute materialization (hash-join
    /// builds) to an operator in the stats.
    #[allow(clippy::wrong_self_convention)] // "from" is the SQL clause, not a conversion
    fn from_stream<'s>(
        &'s self,
        item: &'s CoreFrom,
        whole: &'s CoreOp,
        env: &Env,
    ) -> BindingStream<'s> {
        match item {
            CoreFrom::Scan {
                expr,
                as_var,
                at_var,
            } => self.scan_stream(expr, as_var, at_var.as_deref(), env),
            CoreFrom::Unpivot {
                expr,
                value_var,
                name_var,
            } => self.unpivot_stream(expr, value_var, name_var, env),
            CoreFrom::Let { expr, var } => match self.expr(expr, env) {
                Ok(v) => boxed(std::iter::once(Ok(env.bind(var.clone(), v)))),
                Err(e) => failed(e),
            },
            CoreFrom::Correlate { left, right } => Box::new(CorrelateStream {
                ev: self,
                right,
                whole,
                left: self.from_stream(left, whole, env),
                cur: None,
                done: false,
            }),
            CoreFrom::Join {
                kind,
                left,
                right,
                on,
                right_vars,
            } => Box::new(NestedLoop::new(
                self,
                *kind,
                self.from_stream(left, whole, env),
                right,
                whole,
                right_vars.iter().map(|v| v.as_str().into()).collect(),
                RowTest::On(on),
            )),
            CoreFrom::HashJoin {
                kind,
                left,
                right,
                keys,
                left_pred,
                right_pred,
                residual,
                right_vars,
            } => {
                let names: Vec<Rc<str>> = right_vars.iter().map(|v| v.as_str().into()).collect();
                match self.hash_join_build(right, whole, right_pred.as_ref(), keys, env) {
                    Ok(build) => Box::new(HashProbe {
                        ev: self,
                        kind: *kind,
                        keys: keys.as_slice(),
                        left_pred: left_pred.as_ref(),
                        residual: residual.as_ref(),
                        names,
                        build,
                        left: self.from_stream(left, whole, env),
                        pending: VecDeque::new(),
                        done: false,
                    }),
                    // The optimizer's uncorrelated analysis is static and
                    // conservative, but a runtime `Global` can still
                    // resolve through the environment (dynamic
                    // disambiguation). If the right side fails to *resolve*
                    // in the outer environment, reconstruct the exact
                    // per-left-row nested loop the plan was derived from.
                    // Only that resolution failure is recoverable: any
                    // other build error (a governed budget refusal, a
                    // deadline, an injected fault, a strict-mode error)
                    // must surface, not trigger a silent retry.
                    Err(EvalError::UnknownName(_)) => Box::new(NestedLoop::new(
                        self,
                        *kind,
                        self.from_stream(left, whole, env),
                        right,
                        whole,
                        names,
                        RowTest::Split {
                            keys,
                            left_pred: left_pred.as_ref(),
                            right_pred: right_pred.as_ref(),
                            residual: residual.as_ref(),
                        },
                    )),
                    // The build side exceeded the memory budget and the
                    // session allows spilling: run the join Grace-style —
                    // both sides scatter to key-hash partitions on disk,
                    // each partition pair joins in memory.
                    Err(e) if self.spill_ctx().is_some() && is_memory_refusal(&e) => {
                        match self.grace_hash_join(
                            *kind,
                            left,
                            right,
                            whole,
                            keys,
                            left_pred.as_ref(),
                            right_pred.as_ref(),
                            residual.as_ref(),
                            &names,
                            env,
                        ) {
                            Ok(rows) => from_vec(rows),
                            Err(e) => failed(e),
                        }
                    }
                    Err(e) => failed(e),
                }
            }
        }
    }

    /// Materializes a hash join's right side once and buckets the rows by
    /// the structural hash of their key tuple. Rows failing the build
    /// filter — or with any NULL/MISSING key, which can never compare
    /// equal (3VL) — are left out of the table. The build is the join's
    /// pipeline breaker: its rows are tracked live by a [`MatGauge`]
    /// attributed to the enclosing FROM operator.
    fn hash_join_build<'s>(
        &'s self,
        right: &'s CoreFrom,
        whole: &'s CoreOp,
        right_pred: Option<&CoreExpr>,
        keys: &[(CoreExpr, CoreExpr)],
        env: &Env,
    ) -> Result<JoinBuild<'s>, EvalError> {
        let mut rows: Vec<(Env, Vec<Value>)> = Vec::new();
        let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut gauge = MatGauge::new(self.stats.as_ref(), self.mem_guard(), Some(whole));
        let watcher = self.govern.as_watcher();
        drain_batched(
            self.from_stream(right, whole, env),
            self.batch_size(),
            |r| {
                // The build happens at stream *construction* (before the
                // first wrapped pull), so it ticks the deadline itself —
                // still per row: build rows do real per-row work.
                if let Some(g) = watcher {
                    g.tick()?;
                }
                if let Some(p) = right_pred {
                    if !matches!(self.expr(p, &r)?, Value::Bool(true)) {
                        return Ok(());
                    }
                }
                let mut kv = Vec::with_capacity(keys.len());
                for (_, rk) in keys {
                    let v = self.expr(rk, &r)?;
                    if v.is_absent() {
                        return Ok(());
                    }
                    kv.push(v);
                }
                let bytes = if self.track_bytes() {
                    kv.iter().map(approx_value_bytes).sum::<u64>() + env_bytes(&r)
                } else {
                    0
                };
                gauge.add_sized(1, bytes)?;
                table.entry(joint_hash(&kv)).or_default().push(rows.len());
                rows.push((r, kv));
                Ok(())
            },
        )?;
        if let Some(st) = &self.stats {
            st.add_join_build_rows(rows.len() as u64);
        }
        Ok(JoinBuild { rows, table, gauge })
    }

    /// Grace hash join: the out-of-core fallback when
    /// [`Self::hash_join_build`] takes a memory-budget refusal. Both sides
    /// re-stream once and scatter to seeded key-hash partitions on disk —
    /// build rows as their right-variable bindings (all a probe match
    /// reads back), probe rows as whole binding rows — then each partition
    /// pair joins in memory under a fresh gauge, re-partitioning
    /// recursively when a build partition alone exceeds the budget. Probe
    /// rows that can never match (absent key, false probe filter) resolve
    /// during the scatter: dropped, or padded for LEFT joins. Output
    /// arrives partition by partition — a different order than the
    /// streaming probe, which a join (a bag producer) never promised.
    #[allow(clippy::too_many_arguments)]
    fn grace_hash_join(
        &self,
        kind: CoreJoinKind,
        left: &CoreFrom,
        right: &CoreFrom,
        whole: &CoreOp,
        keys: &[(CoreExpr, CoreExpr)],
        left_pred: Option<&CoreExpr>,
        right_pred: Option<&CoreExpr>,
        residual: Option<&CoreExpr>,
        names: &[Rc<str>],
        env: &Env,
    ) -> Result<Vec<Env>, EvalError> {
        let ctx = self.spill_ctx().expect("grace join requires a spill ctx");
        self.mark_spilled(whole);
        let track_bytes = self.track_bytes();
        let watcher = self.govern.as_watcher();
        let mut bp = GracePartitioner::new(&ctx, 0)?;
        drain_batched(
            self.from_stream(right, whole, env),
            self.batch_size(),
            |r| {
                if let Some(g) = watcher {
                    g.tick()?;
                }
                if let Some(p) = right_pred {
                    if !matches!(self.expr(p, &r)?, Value::Bool(true)) {
                        return Ok(());
                    }
                }
                let mut kv = Vec::with_capacity(keys.len());
                for (_, rk) in keys {
                    let v = self.expr(rk, &r)?;
                    if v.is_absent() {
                        return Ok(());
                    }
                    kv.push(v);
                }
                let rec = encode_keyed_record(&kv, encode_env(&r, Some(names)));
                bp.write(&ctx, &kv, &rec)
            },
        )?;
        let mut out: Vec<Env> = Vec::new();
        let mut lp = GracePartitioner::new(&ctx, 0)?;
        drain_batched(self.from_stream(left, whole, env), self.batch_size(), |l| {
            if let Some(g) = watcher {
                g.tick()?;
            }
            match self.left_join_key(keys, left_pred, &l)? {
                Some(kv) => {
                    let rec = encode_keyed_record(&kv, encode_env(&l, None));
                    lp.write(&ctx, &kv, &rec)
                }
                None => {
                    if kind == CoreJoinKind::Left {
                        out.push(pad_left(&l, names));
                    }
                    Ok(())
                }
            }
        })?;
        let mut work: Vec<(SpillRun, SpillRun, u32)> = bp
            .finish()?
            .into_iter()
            .zip(lp.finish()?)
            .map(|(b, l)| (b, l, 1))
            .collect();
        while let Some((brun, lrun, depth)) = work.pop() {
            if lrun.records() == 0 {
                // No probe rows: nothing to emit — LEFT pads also come
                // from the left side. (The empty-build case still scans,
                // padding every LEFT probe row.)
                continue;
            }
            match self.load_build_partition(whole, &ctx, brun, track_bytes, depth)? {
                BuildLoad::Overflow { build_runs } => {
                    // The probe partition re-scatters under the same seed
                    // so both sides stay pairwise aligned.
                    let mut nlp = GracePartitioner::new(&ctx, u64::from(depth))?;
                    let mut r = lrun.open(&ctx)?;
                    while let Some(rec) = r.next(&ctx)? {
                        let (kv, payload) = decode_keyed_record(rec)?;
                        let rec = encode_keyed_record(&kv, payload);
                        nlp.write(&ctx, &kv, &rec)?;
                    }
                    for (b, l) in build_runs.into_iter().zip(nlp.finish()?) {
                        work.push((b, l, depth + 1));
                    }
                }
                BuildLoad::Table { rows, table, gauge } => {
                    if let Some(st) = &self.stats {
                        st.add_join_build_rows(rows.len() as u64);
                    }
                    let mut r = lrun.open(&ctx)?;
                    while let Some(rec) = r.next(&ctx)? {
                        let (kv, payload) = decode_keyed_record(rec)?;
                        let l = decode_env(payload, env)?;
                        let mut matched = false;
                        if let Some(bucket) = table.get(&joint_hash(&kv)) {
                            for &i in bucket {
                                if let Some(g) = watcher {
                                    g.tick()?;
                                }
                                if let Some(st) = &self.stats {
                                    st.add_join_probes(1);
                                }
                                let (renv, rkv) = &rows[i];
                                if !kv.iter().zip(rkv).all(|(a, b)| deep_eq(a, b)) {
                                    continue;
                                }
                                let combined = combine_envs(&l, renv, names);
                                if let Some(p) = residual {
                                    if !matches!(self.expr(p, &combined)?, Value::Bool(true)) {
                                        continue;
                                    }
                                }
                                matched = true;
                                out.push(combined);
                            }
                        }
                        if !matched && kind == CoreJoinKind::Left {
                            out.push(pad_left(&l, names));
                        }
                    }
                    drop(gauge);
                }
            }
        }
        Ok(out)
    }

    /// A probe row's key values, or `None` when the row can never match
    /// (probe filter false, or any absent key — 3VL equality).
    fn left_join_key(
        &self,
        keys: &[(CoreExpr, CoreExpr)],
        left_pred: Option<&CoreExpr>,
        l: &Env,
    ) -> Result<Option<Vec<Value>>, EvalError> {
        if let Some(p) = left_pred {
            if !matches!(self.expr(p, l)?, Value::Bool(true)) {
                return Ok(None);
            }
        }
        let mut kv = Vec::with_capacity(keys.len());
        for (lk, _) in keys {
            let v = self.expr(lk, l)?;
            if v.is_absent() {
                return Ok(None);
            }
            kv.push(v);
        }
        Ok(Some(kv))
    }

    /// Loads one spilled build partition into a probe-ready hash table, or
    /// — when it alone exceeds the budget — re-scatters it under the next
    /// depth's seed and reports the new runs.
    fn load_build_partition(
        &self,
        whole: &CoreOp,
        ctx: &SpillCtx<'_>,
        run: SpillRun,
        track_bytes: bool,
        depth: u32,
    ) -> Result<BuildLoad<'_>, EvalError> {
        let mut reader = run.open(ctx)?;
        let mut gauge = MatGauge::new(self.stats.as_ref(), self.mem_guard(), Some(whole));
        let mut rows: Vec<(Env, Vec<Value>)> = Vec::new();
        let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut tracked = (0u64, 0u64);
        while let Some(rec) = reader.next(ctx)? {
            let (kv, payload) = decode_keyed_record(rec)?;
            let bytes = if track_bytes {
                kv.iter().map(approx_value_bytes).sum::<u64>() + approx_value_bytes(&payload)
            } else {
                0
            };
            if let Err(e) = gauge.add_sized(1, bytes) {
                if !is_memory_refusal(&e) || depth > ctx.config.max_recursion {
                    return Err(e);
                }
                let mut p = GracePartitioner::new(ctx, u64::from(depth))?;
                for (renv, rkv) in rows.drain(..) {
                    let rec = encode_keyed_record(&rkv, encode_env(&renv, None));
                    p.write(ctx, &rkv, &rec)?;
                }
                table.clear();
                gauge.remove(tracked.0, tracked.1);
                let rec = encode_keyed_record(&kv, payload);
                p.write(ctx, &kv, &rec)?;
                while let Some(rec) = reader.next(ctx)? {
                    let (kv2, payload2) = decode_keyed_record(rec)?;
                    let rec2 = encode_keyed_record(&kv2, payload2);
                    p.write(ctx, &kv2, &rec2)?;
                }
                return Ok(BuildLoad::Overflow {
                    build_runs: p.finish()?,
                });
            }
            tracked.0 += 1;
            tracked.1 += bytes;
            let renv = decode_env(payload, &Env::new())?;
            table.entry(joint_hash(&kv)).or_default().push(rows.len());
            rows.push((renv, kv));
        }
        Ok(BuildLoad::Table { rows, table, gauge })
    }

    /// How a scan obtains its source: a fully-resolved catalog name scans
    /// the stored collection *shared* (`Arc` snapshot — elements clone
    /// lazily, one per pulled row); anything else evaluates to an owned
    /// value.
    fn scan_source(&self, expr: &CoreExpr, env: &Env) -> Result<ScanSource, EvalError> {
        if let CoreExpr::Global(segments) = expr {
            self.govern.fault_at(FaultSite::CatalogRead)?;
            if let Some((value, used)) = self.catalog.resolve_prefix(segments) {
                if used == segments.len() {
                    return Ok(ScanSource::Shared(value));
                }
            }
        }
        Ok(ScanSource::Owned(self.expr(expr, env)?))
    }

    /// Iterating a FROM source (§III): collections iterate, MISSING
    /// vanishes, and any other value is — permissively — a singleton
    /// ("aliases may bind to any value, not just tuples").
    /// `rows_scanned` counts *pulled* elements, so a short-circuited
    /// consumer (LIMIT, EXISTS) stops the count with the pull.
    fn scan_stream<'s>(
        &'s self,
        expr: &CoreExpr,
        as_var: &str,
        at_var: Option<&str>,
        env: &Env,
    ) -> BindingStream<'s> {
        let source = match self.scan_source(expr, env) {
            Ok(s) => s,
            Err(e) => return failed(e),
        };
        // Intern the binding names once; each per-row bind is then a
        // refcount bump instead of a String allocation.
        let as_var: Rc<str> = as_var.into();
        let at_var: Option<Rc<str>> = at_var.map(Into::into);
        match source {
            ScanSource::Shared(arc) if matches!(&*arc, Value::Bag(_) | Value::Array(_)) => {
                Box::new(SharedScan {
                    ev: self,
                    source: arc,
                    idx: 0,
                    as_var,
                    at_var,
                    env: env.clone(),
                })
            }
            ScanSource::Shared(arc) => {
                self.scan_value_stream((*arc).clone(), as_var, at_var, env.clone())
            }
            ScanSource::Owned(v) => self.scan_value_stream(v, as_var, at_var, env.clone()),
        }
    }

    /// Streams an owned scan source (a computed collection, or a scalar).
    fn scan_value_stream<'s>(
        &'s self,
        source: Value,
        as_var: Rc<str>,
        at_var: Option<Rc<str>>,
        env: Env,
    ) -> BindingStream<'s> {
        match source {
            Value::Bag(items) => Box::new(OwnedScan {
                ev: self,
                items: items.into_iter(),
                next_idx: 0,
                is_array: false,
                strict_bag_at: at_var.is_some()
                    && matches!(self.config.typing, TypingMode::StrictError),
                as_var,
                at_var,
                env,
            }),
            Value::Array(items) => Box::new(OwnedScan {
                ev: self,
                items: items.into_iter(),
                next_idx: 0,
                is_array: true,
                strict_bag_at: false,
                as_var,
                at_var,
                env,
            }),
            Value::Missing => empty(),
            other => match self.config.typing {
                TypingMode::Permissive => boxed(std::iter::once_with(move || {
                    if let Some(st) = &self.stats {
                        st.add_rows_scanned(1);
                    }
                    let mut e = env.bind(as_var, other);
                    if let Some(at) = at_var {
                        e = e.bind(at, Value::Missing);
                    }
                    Ok(e)
                })),
                TypingMode::StrictError => failed(EvalError::Type(format!(
                    "FROM source must be a collection, found {}",
                    other.kind().name()
                ))),
            },
        }
    }

    /// UNPIVOT (§VI-A): a tuple's attribute/value pairs become data. A
    /// non-tuple coerces to `{'_1': v}` in permissive mode (PartiQL's
    /// rule); MISSING unpivots to nothing.
    fn unpivot_stream<'s>(
        &'s self,
        expr: &CoreExpr,
        value_var: &str,
        name_var: &str,
        env: &Env,
    ) -> BindingStream<'s> {
        let tuple = match self.expr(expr, env) {
            Err(e) => return failed(e),
            Ok(Value::Tuple(t)) => t,
            Ok(Value::Missing) => return empty(),
            Ok(other) => match self.config.typing {
                TypingMode::Permissive => {
                    let mut t = Tuple::new();
                    t.insert("_1", other);
                    t
                }
                TypingMode::StrictError => {
                    return failed(EvalError::Type(format!(
                        "UNPIVOT source must be a tuple, found {}",
                        other.kind().name()
                    )));
                }
            },
        };
        let value_var: Rc<str> = value_var.into();
        let name_var: Rc<str> = name_var.into();
        let env = env.clone();
        boxed(tuple.into_iter().map(move |(name, value)| {
            if let Some(st) = &self.stats {
                st.add_rows_scanned(1);
            }
            Ok(env
                .bind(value_var.clone(), value)
                .bind(name_var.clone(), Value::Str(name)))
        }))
    }

    // =================================================================
    // Fused scan spine
    // =================================================================

    /// The effective batch size (configured, floored at one row).
    fn batch_size(&self) -> usize {
        self.config.batch_size.max(1)
    }

    /// The fused fast path for a materializing `SELECT VALUE`: see
    /// [`Self::try_fused`]. Returns `None` when the shape or config is
    /// ineligible and the adapter pipeline should run instead.
    fn try_fused_project(
        &self,
        input: &CoreOp,
        proj: &CoreExpr,
        env: &Env,
    ) -> Option<Result<Value, EvalError>> {
        let mut out = Vec::new();
        let r = self.try_fused(input, proj, env, |v| {
            out.push(v);
            Ok(())
        })?;
        Some(r.map(|()| Value::Bag(out)))
    }

    /// The fused scan spine: when `input` is a bare `Scan → Filter*`
    /// chain (no AT variable) and every predicate plus the projection
    /// compiled to root-safe bytecode, each source element is evaluated
    /// *borrowed* — no per-row `Env` allocation, no per-row adapter
    /// dispatch, the deadline ticked once per [`BATCH_TICK_ROWS`] rows.
    /// Only active when stats are off (`EXPLAIN ANALYZE` wants real
    /// per-operator adapters) and no faults are injected; results are
    /// identical to the adapter pipeline because both bottom out in the
    /// same compiled programs and scan-source semantics.
    fn try_fused(
        &self,
        input: &CoreOp,
        proj: &CoreExpr,
        env: &Env,
        emit: impl FnMut(Value) -> Result<(), EvalError>,
    ) -> Option<Result<(), EvalError>> {
        if self.config.batch_size <= 1
            || self.stats.is_some()
            || self.govern.injects_faults()
            || !self.has_programs.get()
        {
            return None;
        }
        // Peel WHERE filters down to a plain scan.
        let mut preds: Vec<&CoreExpr> = Vec::new();
        let mut op = input;
        let (scan_expr, as_var) = loop {
            match op {
                CoreOp::Filter { input, pred } => {
                    preds.push(pred);
                    op = input;
                }
                CoreOp::From {
                    item:
                        CoreFrom::Scan {
                            expr,
                            as_var,
                            at_var: None,
                        },
                } => break (expr, as_var.as_str()),
                _ => return None,
            }
        };
        // Peeled outermost-first; they must run scan-side-first.
        preds.reverse();
        let pred_progs: Vec<Rc<Compiled>> = preds
            .iter()
            .map(|p| self.rooted_program(p))
            .collect::<Option<_>>()?;
        let proj_prog = self.rooted_program(proj)?;
        Some(self.run_fused(scan_expr, as_var, &pred_progs, &proj_prog, env, emit))
    }

    /// Looks up an expression's cached program, requiring it to be safe
    /// to run against a borrowed root binding.
    fn rooted_program(&self, e: &CoreExpr) -> Option<Rc<Compiled>> {
        let c = self
            .programs
            .borrow()
            .get(&(e as *const CoreExpr as usize))
            .cloned()?;
        match &*c {
            Compiled::Program(p) if p.root_safe => Some(c),
            Compiled::Program(_) | Compiled::Fallback => None,
        }
    }

    fn run_fused(
        &self,
        scan_expr: &CoreExpr,
        as_var: &str,
        preds: &[Rc<Compiled>],
        proj: &Rc<Compiled>,
        env: &Env,
        mut emit: impl FnMut(Value) -> Result<(), EvalError>,
    ) -> Result<(), EvalError> {
        let source = self.scan_source(scan_expr, env)?;
        let source_val: &Value = match &source {
            ScanSource::Shared(arc) => arc,
            ScanSource::Owned(v) => v,
        };
        // Mirrors `scan_value_stream`: collections iterate, MISSING
        // vanishes, anything else is a permissive singleton or a strict
        // error.
        let items: &[Value] = match source_val {
            Value::Bag(items) | Value::Array(items) => items.as_slice(),
            Value::Missing => return Ok(()),
            other => match self.config.typing {
                TypingMode::Permissive => std::slice::from_ref(other),
                TypingMode::StrictError => {
                    return Err(EvalError::Type(format!(
                        "FROM source must be a collection, found {}",
                        other.kind().name()
                    )));
                }
            },
        };
        // Specialize every program for this run's root variable once:
        // root references become direct RootVar/RootField instructions,
        // so the hot loop never compares variable names.
        let pred_specs: Vec<bytecode::Program> = preds
            .iter()
            .map(|p| {
                let Compiled::Program(pp) = &**p else {
                    unreachable!("rooted_program only returns programs");
                };
                pp.specialize_for_root(as_var)
            })
            .collect();
        let Compiled::Program(proj_prog) = &**proj else {
            unreachable!("rooted_program only returns programs");
        };
        let proj_spec = proj_prog.specialize_for_root(as_var);
        let watcher = self.govern.as_watcher();
        // One value stack for the whole run. Compiled instructions never
        // re-enter the VM (subqueries are Fallback), and even if `emit`
        // does (a nested query inside an accumulator), `Cell::take`
        // hands it a fresh stack — correctness never depends on this
        // reuse, only speed does.
        let mut stack = self.vm_stack.take();
        stack.clear();
        let mut run = |stack: &mut Vec<Value>| -> Result<(), EvalError> {
            'rows: for (i, item) in items.iter().enumerate() {
                if let Some(g) = watcher {
                    // At least once per batch-worth of rows, starting
                    // immediately: a huge source cannot outrun the
                    // deadline.
                    if i % BATCH_TICK_ROWS == 0 {
                        g.tick()?;
                    }
                }
                for p in &pred_specs {
                    self.exec_program(p, Some((as_var, item)), env, stack)?;
                    match stack.pop().expect("bytecode program left no result") {
                        Value::Bool(true) => {}
                        _ => continue 'rows,
                    }
                }
                self.exec_program(&proj_spec, Some((as_var, item)), env, stack)?;
                emit(stack.pop().expect("bytecode program left no result"))?;
            }
            Ok(())
        };
        let result = run(&mut stack);
        stack.clear();
        self.vm_stack.set(stack);
        result
    }

    // =================================================================
    // Expressions
    // =================================================================

    /// Evaluates a Core expression in an environment.
    pub fn expr(&self, e: &CoreExpr, env: &Env) -> Result<Value, EvalError> {
        // Scalar evaluation is the finest-grained fault site: per-row
        // stream closures and DML row predicates run through here, so
        // chaos plans can fail mid-stream, not just at operator setup.
        // Gated on hook presence — zero-cost in production.
        if self.govern.injects_faults() {
            self.govern.fault_at(FaultSite::OperatorEval)?;
        }
        if self.has_programs.get() {
            let prog = self
                .programs
                .borrow()
                .get(&(e as *const CoreExpr as usize))
                .cloned();
            if let Some(prog) = prog {
                let Compiled::Program(p) = &*prog else {
                    unreachable!("only compiled programs are cached");
                };
                return self.run_program(p, None, env);
            }
        }
        match e {
            CoreExpr::Const(v) => Ok(v.clone()),
            CoreExpr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::UnknownName(name.clone())),
            CoreExpr::Param(i) => self
                .params
                .get(*i)
                .cloned()
                .ok_or(EvalError::MissingParam(*i)),
            CoreExpr::Global(segments) => self.resolve_global(segments, env),
            CoreExpr::Dynamic(name) => self.resolve_global(std::slice::from_ref(name), env),
            CoreExpr::Path(base, attr) => {
                let base = self.expr(base, env)?;
                match &base {
                    Value::Tuple(_) | Value::Null | Value::Missing => Ok(base.path(attr)),
                    other => self.type_err(|| {
                        format!(
                            "cannot navigate attribute {attr:?} of a {}",
                            other.kind().name()
                        )
                    }),
                }
            }
            CoreExpr::Index(base, idx) => {
                let base = self.expr(base, env)?;
                let idx = self.expr(idx, env)?;
                if base.is_missing() || idx.is_missing() {
                    return Ok(Value::Missing);
                }
                if base.is_null() || idx.is_null() {
                    return Ok(Value::Null);
                }
                match (&base, &idx) {
                    (Value::Array(_), Value::Int(i)) => Ok(base.index(*i)),
                    _ => self.type_err(|| {
                        format!(
                            "cannot index a {} with a {}",
                            base.kind().name(),
                            idx.kind().name()
                        )
                    }),
                }
            }
            CoreExpr::Bin(op, l, r) => self.binop(*op, l, r, env),
            CoreExpr::Un(op, inner) => {
                let v = self.expr(inner, env)?;
                if v.is_missing() {
                    return Ok(Value::Missing);
                }
                if v.is_null() {
                    return Ok(Value::Null);
                }
                match op {
                    UnOp::Not => match v {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => self.type_err(|| {
                            format!("NOT requires a boolean, found {}", other.kind().name())
                        }),
                    },
                    UnOp::Neg => self.lift_num(num_neg(&v)),
                    UnOp::Pos => {
                        if v.is_number() {
                            Ok(v)
                        } else {
                            self.type_err(|| {
                                format!("unary + requires a number, found {}", v.kind().name())
                            })
                        }
                    }
                }
            }
            CoreExpr::Like {
                expr,
                pattern,
                escape,
                negated,
            } => self.like(expr, pattern, escape.as_deref(), *negated, env),
            CoreExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // x BETWEEN a AND b ≡ a <= x AND x <= b under 3VL.
                let ge = self.compare(BinOp::GtEq, expr, low, env)?;
                let le = self.compare(BinOp::LtEq, expr, high, env)?;
                let both = logical_and(&ge, &le);
                Ok(if *negated { logical_not(&both) } else { both })
            }
            CoreExpr::In {
                expr,
                collection,
                negated,
            } => {
                let v = self.in_predicate(expr, collection, env)?;
                Ok(if *negated { logical_not(&v) } else { v })
            }
            CoreExpr::Is {
                expr,
                test,
                negated,
            } => {
                let v = self.expr(expr, env)?;
                let result = match test {
                    // SQL compatibility: IS NULL is true for both absent
                    // values (a schemaful client cannot tell them apart).
                    IsTest::Null => v.is_absent(),
                    IsTest::Missing => v.is_missing(),
                    IsTest::Type(name) => type_test(&v, name),
                };
                Ok(Value::Bool(result != *negated))
            }
            CoreExpr::Case { arms, else_expr } => {
                for (when, then) in arms {
                    match self.expr(when, env)? {
                        Value::Bool(true) => return self.expr(then, env),
                        // §IV-B (Listing 9): in composability mode a
                        // MISSING condition propagates — "CASE WHEN
                        // MISSING … END … will in turn evaluate to
                        // MISSING". SQL-compat mode keeps SQL's rule
                        // (non-true falls through to the next arm/ELSE).
                        Value::Missing if self.config.compat == CompatMode::Composable => {
                            return Ok(Value::Missing);
                        }
                        _ => {}
                    }
                }
                self.expr(else_expr, env)
            }
            CoreExpr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, env)?);
                }
                match functions::call(name, &vals, self.config.compat == CompatMode::SqlCompat)? {
                    Ok(v) => Ok(v),
                    Err(msg) => self.type_err(|| msg),
                }
            }
            CoreExpr::CollAgg {
                func,
                distinct,
                input,
            } => self.coll_agg(*func, *distinct, input, env),
            CoreExpr::Subquery { plan, coercion } => match coercion {
                Coercion::Scalar if produces_elements(&plan.op) => {
                    // Streaming scalar coercion: at most two pulled
                    // elements decide the 0 / 1 / many-rows cases.
                    if let Some(st) = &self.stats {
                        st.add_subquery_invocation();
                    }
                    let mut stream = self.element_stream(&plan.op, env);
                    let first = match stream.next() {
                        None => return Ok(Value::Null),
                        Some(r) => r?,
                    };
                    match stream.next() {
                        None => self.single_attr(&first),
                        Some(Err(e)) => Err(e),
                        Some(Ok(_)) => match self.config.typing {
                            TypingMode::Permissive => Ok(Value::Missing),
                            TypingMode::StrictError => Err(EvalError::Cardinality(
                                "scalar subquery produced more than one row".to_string(),
                            )),
                        },
                    }
                }
                _ => {
                    let v = self.run_in(plan, env)?;
                    self.coerce_subquery(v, *coercion)
                }
            },
            CoreExpr::Exists(q) => {
                if produces_elements(&q.op) {
                    // Streaming: one pulled element decides EXISTS.
                    if let Some(st) = &self.stats {
                        st.add_subquery_invocation();
                    }
                    match self.element_stream(&q.op, env).next() {
                        None => Ok(Value::Bool(false)),
                        Some(Err(e)) => Err(e),
                        Some(Ok(_)) => Ok(Value::Bool(true)),
                    }
                } else {
                    let v = self.run_in(q, env)?;
                    match v.as_elements() {
                        Some(items) => Ok(Value::Bool(!items.is_empty())),
                        None => Ok(Value::Bool(true)), // PIVOT result: a tuple exists
                    }
                }
            }
            CoreExpr::TupleCtor(pairs) => {
                let mut t = Tuple::with_capacity(pairs.len());
                for (name_expr, value_expr) in pairs {
                    let name = self.expr(name_expr, env)?;
                    let value = self.expr(value_expr, env)?;
                    match name {
                        Value::Str(s) => t.insert(s, value),
                        // Absent names skip the pair in permissive mode.
                        Value::Missing | Value::Null => match self.config.typing {
                            TypingMode::Permissive => {}
                            TypingMode::StrictError => {
                                return Err(EvalError::Type(
                                    "tuple attribute name is absent".to_string(),
                                ));
                            }
                        },
                        other => {
                            self.type_err(|| {
                                format!(
                                    "tuple attribute name must be a string, found {}",
                                    other.kind().name()
                                )
                            })?;
                        }
                    }
                }
                Ok(Value::Tuple(t))
            }
            CoreExpr::ArrayCtor(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let v = self.expr(item, env)?;
                    if !v.is_missing() {
                        out.push(v); // constructors omit MISSING
                    }
                }
                Ok(Value::Array(out))
            }
            CoreExpr::BagCtor(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let v = self.expr(item, env)?;
                    if !v.is_missing() {
                        out.push(v);
                    }
                }
                Ok(Value::Bag(out))
            }
            CoreExpr::Cast { expr, ty } => {
                let v = self.expr(expr, env)?;
                let target = CastTarget::parse(ty)
                    .ok_or_else(|| EvalError::Type(format!("unknown CAST target type {ty}")))?;
                match cast(&v, target) {
                    Some(out) => Ok(out),
                    None => self
                        .type_err(|| format!("cannot cast {} value {v} to {ty}", v.kind().name())),
                }
            }
        }
    }

    // =================================================================
    // Bytecode VM
    // =================================================================

    /// Runs a compiled expression program. `root` optionally supplies one
    /// borrowed binding that shadows `env` (the fused scan spine's row
    /// variable — looked up first, exactly as a real `bind` would
    /// shadow). Value semantics, error messages, and stat side effects
    /// are identical to the tree-walker by construction: every operator
    /// bottoms out in the same value-level helpers.
    fn run_program(
        &self,
        prog: &bytecode::Program,
        root: Option<(&str, &Value)>,
        env: &Env,
    ) -> Result<Value, EvalError> {
        let mut stack = self.vm_stack.take();
        stack.clear();
        let result = self.exec_program(prog, root, env, &mut stack);
        let out = match result {
            Ok(()) => stack.pop().expect("bytecode program left no result"),
            Err(e) => {
                stack.clear();
                self.vm_stack.set(stack);
                return Err(e);
            }
        };
        stack.clear();
        self.vm_stack.set(stack);
        Ok(out)
    }

    fn exec_program(
        &self,
        prog: &bytecode::Program,
        root: Option<(&str, &Value)>,
        env: &Env,
        stack: &mut Vec<Value>,
    ) -> Result<(), EvalError> {
        let instrs = &prog.instrs;
        let mut pc = 0usize;
        while pc < instrs.len() {
            match &instrs[pc] {
                Instr::Const(v) => stack.push(v.clone()),
                Instr::Var(name) => {
                    let v = match root {
                        Some((rv, val)) if name == rv => Some(val.clone()),
                        _ => env.get(name).cloned(),
                    };
                    match v {
                        Some(v) => stack.push(v),
                        None => return Err(EvalError::UnknownName(name.clone())),
                    }
                }
                Instr::Param(i) => match self.params.get(*i) {
                    Some(v) => stack.push(v.clone()),
                    None => return Err(EvalError::MissingParam(*i)),
                },
                Instr::Global(segments) => stack.push(self.resolve_global(segments, env)?),
                Instr::Dynamic(name) => {
                    stack.push(self.resolve_global(std::slice::from_ref(name), env)?)
                }
                Instr::Field { var, attr } => {
                    let base = match root {
                        Some((rv, val)) if var == rv => Some(val),
                        _ => env.get(var),
                    };
                    let Some(base) = base else {
                        return Err(EvalError::UnknownName(var.clone()));
                    };
                    let v = match base {
                        Value::Tuple(_) | Value::Null | Value::Missing => base.path(attr),
                        other => self.type_err(|| {
                            format!(
                                "cannot navigate attribute {attr:?} of a {}",
                                other.kind().name()
                            )
                        })?,
                    };
                    stack.push(v);
                }
                Instr::RootVar => {
                    let Some((_, val)) = root else {
                        return Err(EvalError::Type(
                            "root instruction outside the fused spine".into(),
                        ));
                    };
                    stack.push(val.clone());
                }
                Instr::RootField(attr) => {
                    let Some((_, base)) = root else {
                        return Err(EvalError::Type(
                            "root instruction outside the fused spine".into(),
                        ));
                    };
                    let v = match base {
                        Value::Tuple(_) | Value::Null | Value::Missing => base.path(attr),
                        other => self.type_err(|| {
                            format!(
                                "cannot navigate attribute {attr:?} of a {}",
                                other.kind().name()
                            )
                        })?,
                    };
                    stack.push(v);
                }
                Instr::Path(attr) => {
                    let base = stack.pop().expect("stack");
                    let v = match &base {
                        Value::Tuple(_) | Value::Null | Value::Missing => base.path(attr),
                        other => self.type_err(|| {
                            format!(
                                "cannot navigate attribute {attr:?} of a {}",
                                other.kind().name()
                            )
                        })?,
                    };
                    stack.push(v);
                }
                Instr::Index => {
                    let idx = stack.pop().expect("stack");
                    let base = stack.pop().expect("stack");
                    let v = if base.is_missing() || idx.is_missing() {
                        Value::Missing
                    } else if base.is_null() || idx.is_null() {
                        Value::Null
                    } else {
                        match (&base, &idx) {
                            (Value::Array(_), Value::Int(i)) => base.index(*i),
                            _ => self.type_err(|| {
                                format!(
                                    "cannot index a {} with a {}",
                                    base.kind().name(),
                                    idx.kind().name()
                                )
                            })?,
                        }
                    };
                    stack.push(v);
                }
                Instr::Bin(op) => {
                    let rv = stack.pop().expect("stack");
                    let lv = stack.pop().expect("stack");
                    // Int×Int fast path. Overflow (and every non-int
                    // pair) falls through to the general path, so
                    // promotion and error semantics are untouched.
                    let v = match (&lv, &rv) {
                        (Value::Int(a), Value::Int(b)) => match int_fast_binop(*op, *a, *b) {
                            Some(v) => v,
                            None => self.binop_values(*op, &lv, &rv)?,
                        },
                        _ => self.binop_values(*op, &lv, &rv)?,
                    };
                    stack.push(v);
                }
                Instr::ShortCircuit { op, end } => {
                    let lv = stack.last().expect("stack");
                    let dominates = match op {
                        BinOp::And => *lv == Value::Bool(false),
                        _ => *lv == Value::Bool(true),
                    };
                    if dominates {
                        pc = *end;
                        continue;
                    }
                }
                Instr::Logic(op) => {
                    let rv = stack.pop().expect("stack");
                    let lv = stack.pop().expect("stack");
                    let (lb, rb) = (self.to_logical(&lv)?, self.to_logical(&rv)?);
                    stack.push(match op {
                        BinOp::And => and3(lb, rb),
                        _ => or3(lb, rb),
                    });
                }
                Instr::Un(op) => {
                    let v = stack.pop().expect("stack");
                    let out = if v.is_missing() {
                        Value::Missing
                    } else if v.is_null() {
                        Value::Null
                    } else {
                        match op {
                            UnOp::Not => match v {
                                Value::Bool(b) => Value::Bool(!b),
                                other => self.type_err(|| {
                                    format!("NOT requires a boolean, found {}", other.kind().name())
                                })?,
                            },
                            UnOp::Neg => self.lift_num(num_neg(&v))?,
                            UnOp::Pos => {
                                if v.is_number() {
                                    v
                                } else {
                                    self.type_err(|| {
                                        format!(
                                            "unary + requires a number, found {}",
                                            v.kind().name()
                                        )
                                    })?
                                }
                            }
                        }
                    };
                    stack.push(out);
                }
                Instr::Is { test, negated } => {
                    let v = stack.pop().expect("stack");
                    let result = match test {
                        IsTest::Null => v.is_absent(),
                        IsTest::Missing => v.is_missing(),
                        IsTest::Type(name) => type_test(&v, name),
                    };
                    stack.push(Value::Bool(result != *negated));
                }
                Instr::Like {
                    has_escape,
                    negated,
                } => {
                    let esc = has_escape.then(|| stack.pop().expect("stack"));
                    let pat = stack.pop().expect("stack");
                    let text = stack.pop().expect("stack");
                    stack.push(self.like_values(&text, &pat, esc.as_ref(), *negated)?);
                }
                Instr::BetweenFinish { negated } => {
                    let le = stack.pop().expect("stack");
                    let ge = stack.pop().expect("stack");
                    let both = logical_and(&ge, &le);
                    stack.push(if *negated { logical_not(&both) } else { both });
                }
                Instr::JumpIfMissing(end) => {
                    if stack.last().expect("stack").is_missing() {
                        pc = *end;
                        continue;
                    }
                }
                Instr::InCollection { negated } => {
                    let hay = stack.pop().expect("stack");
                    let needle = stack.pop().expect("stack");
                    let v = self.in_values(&needle, &hay)?;
                    stack.push(if *negated { logical_not(&v) } else { v });
                }
                Instr::CaseJump { next, end } => {
                    let cond = stack.pop().expect("stack");
                    match cond {
                        Value::Bool(true) => {}
                        Value::Missing if self.config.compat == CompatMode::Composable => {
                            stack.push(Value::Missing);
                            pc = *end;
                            continue;
                        }
                        _ => {
                            pc = *next;
                            continue;
                        }
                    }
                }
                Instr::Jump(target) => {
                    pc = *target;
                    continue;
                }
                Instr::Call { name, argc } => {
                    let vals = stack.split_off(stack.len() - argc);
                    let v = match functions::call(
                        name,
                        &vals,
                        self.config.compat == CompatMode::SqlCompat,
                    )? {
                        Ok(v) => v,
                        Err(msg) => self.type_err(|| msg)?,
                    };
                    stack.push(v);
                }
                Instr::Cast { target, ty } => {
                    let v = stack.pop().expect("stack");
                    let out = match cast(&v, *target) {
                        Some(out) => out,
                        None => self.type_err(|| {
                            format!("cannot cast {} value {v} to {ty}", v.kind().name())
                        })?,
                    };
                    stack.push(out);
                }
                Instr::BadCast(ty) => {
                    return Err(EvalError::Type(format!("unknown CAST target type {ty}")));
                }
                Instr::TupleCtor(n) => {
                    let vals = stack.split_off(stack.len() - 2 * n);
                    let mut t = Tuple::with_capacity(*n);
                    let mut it = vals.into_iter();
                    while let (Some(name), Some(value)) = (it.next(), it.next()) {
                        match name {
                            Value::Str(s) => t.insert(s, value),
                            Value::Missing | Value::Null => match self.config.typing {
                                TypingMode::Permissive => {}
                                TypingMode::StrictError => {
                                    return Err(EvalError::Type(
                                        "tuple attribute name is absent".to_string(),
                                    ));
                                }
                            },
                            other => {
                                self.type_err(|| {
                                    format!(
                                        "tuple attribute name must be a string, found {}",
                                        other.kind().name()
                                    )
                                })?;
                            }
                        }
                    }
                    stack.push(Value::Tuple(t));
                }
                Instr::ArrayCtor(n) => {
                    let vals = stack.split_off(stack.len() - n);
                    stack.push(Value::Array(
                        vals.into_iter().filter(|v| !v.is_missing()).collect(),
                    ));
                }
                Instr::BagCtor(n) => {
                    let vals = stack.split_off(stack.len() - n);
                    stack.push(Value::Bag(
                        vals.into_iter().filter(|v| !v.is_missing()).collect(),
                    ));
                }
            }
            pc += 1;
        }
        Ok(())
    }

    /// Runs a nested plan with the current environment as its outer scope
    /// (correlated subqueries).
    fn run_in(&self, q: &CoreQuery, env: &Env) -> Result<Value, EvalError> {
        if let Some(st) = &self.stats {
            st.add_subquery_invocation();
        }
        self.value_op(&q.op, env)
    }

    /// Catalog resolution with longest-prefix matching and, on a miss, the
    /// dynamic-disambiguation fallback (a unique attribute of exactly one
    /// in-scope tuple binding).
    fn resolve_global(&self, segments: &[String], env: &Env) -> Result<Value, EvalError> {
        self.govern.fault_at(FaultSite::CatalogRead)?;
        if let Some((value, used)) = self.catalog.resolve_prefix(segments) {
            let mut v = (*value).clone();
            for attr in &segments[used..] {
                v = v.path(attr);
            }
            return Ok(v);
        }
        // CTE/variable names that look dotted never reach here (the
        // planner resolved in-scope heads); but a head can still be bound
        // dynamically (SortValues' attribute scope) or be an attribute of
        // exactly one visible tuple.
        if let Some(v) = env.get(&segments[0]) {
            let mut v = v.clone();
            for attr in &segments[1..] {
                v = v.path(attr);
            }
            return Ok(v);
        }
        let head = &segments[0];
        let mut candidates = Vec::new();
        for (name, value) in env.visible_bindings() {
            if name.starts_with('$') && name != "$out" {
                continue;
            }
            if let Value::Tuple(t) = value {
                if t.contains(head) {
                    candidates.push(value);
                }
            }
        }
        if candidates.len() == 1 {
            let mut v = candidates[0].clone();
            for attr in segments {
                v = v.path(attr);
            }
            return Ok(v);
        }
        Err(EvalError::UnknownName(segments.join(".")))
    }

    fn lift_num(&self, r: Result<Value, NumError>) -> Result<Value, EvalError> {
        match r {
            Ok(v) => Ok(v),
            Err(NumError::NotANumber(kind)) => {
                self.type_err(|| format!("expected a number, found {kind}"))
            }
            Err(NumError::Overflow) => match self.config.typing {
                TypingMode::Permissive => Ok(Value::Missing),
                TypingMode::StrictError => {
                    Err(EvalError::Arithmetic("numeric overflow".to_string()))
                }
            },
            Err(NumError::DivisionByZero) => match self.config.typing {
                TypingMode::Permissive => Ok(Value::Missing),
                TypingMode::StrictError => {
                    Err(EvalError::Arithmetic("division by zero".to_string()))
                }
            },
        }
    }

    fn binop(&self, op: BinOp, l: &CoreExpr, r: &CoreExpr, env: &Env) -> Result<Value, EvalError> {
        // AND/OR have their own absent-value tables (SQL 3VL extended to
        // MISSING; FALSE/TRUE dominate even absent operands).
        if op == BinOp::And || op == BinOp::Or {
            let lv = self.expr(l, env)?;
            // Short-circuit on the dominating value.
            if op == BinOp::And && lv == Value::Bool(false) {
                return Ok(Value::Bool(false));
            }
            if op == BinOp::Or && lv == Value::Bool(true) {
                return Ok(Value::Bool(true));
            }
            let rv = self.expr(r, env)?;
            let (lb, rb) = (self.to_logical(&lv)?, self.to_logical(&rv)?);
            return Ok(match op {
                BinOp::And => and3(lb, rb),
                _ => or3(lb, rb),
            });
        }
        let lv = self.expr(l, env)?;
        let rv = self.expr(r, env)?;
        self.binop_values(op, &lv, &rv)
    }

    /// The value-level half of every non-AND/OR binary operator — shared
    /// between the tree-walker and the bytecode VM.
    fn binop_values(&self, op: BinOp, lv: &Value, rv: &Value) -> Result<Value, EvalError> {
        match op {
            BinOp::Eq => Ok(sql_eq(lv, rv)),
            BinOp::NotEq => Ok(logical_not(&sql_eq(lv, rv))),
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => self.compare_values(op, lv, rv),
            BinOp::Add => self.arith(NumOp::Add, lv, rv),
            BinOp::Sub => self.arith(NumOp::Sub, lv, rv),
            BinOp::Mul => self.arith(NumOp::Mul, lv, rv),
            BinOp::Div => self.arith(NumOp::Div, lv, rv),
            BinOp::Mod => self.arith(NumOp::Rem, lv, rv),
            BinOp::Concat => {
                if lv.is_missing() || rv.is_missing() {
                    return Ok(Value::Missing);
                }
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                match (&lv, &rv) {
                    (Value::Str(a), Value::Str(b)) => {
                        let mut s = String::with_capacity(a.len() + b.len());
                        s.push_str(a);
                        s.push_str(b);
                        Ok(Value::Str(s))
                    }
                    _ => self.type_err(|| {
                        format!(
                            "|| requires strings, found {} and {}",
                            lv.kind().name(),
                            rv.kind().name()
                        )
                    }),
                }
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn arith(&self, op: NumOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
        if l.is_missing() || r.is_missing() {
            return Ok(Value::Missing);
        }
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        self.lift_num(num_binop(op, l, r))
    }

    fn compare(
        &self,
        op: BinOp,
        l: &CoreExpr,
        r: &CoreExpr,
        env: &Env,
    ) -> Result<Value, EvalError> {
        let lv = self.expr(l, env)?;
        let rv = self.expr(r, env)?;
        self.compare_values(op, &lv, &rv)
    }

    fn compare_values(&self, op: BinOp, lv: &Value, rv: &Value) -> Result<Value, EvalError> {
        match sql_compare(lv, rv) {
            Err(absent) => Ok(absent),
            Ok(Some(ord)) => Ok(Value::Bool(match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::LtEq => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::GtEq => ord.is_ge(),
                _ => unreachable!(),
            })),
            Ok(None) => self.type_err(|| {
                format!(
                    "cannot compare {} with {}",
                    lv.kind().name(),
                    rv.kind().name()
                )
            }),
        }
    }

    /// Converts to 3VL: Some(bool), or None for absent. `u8` encodes
    /// MISSING=0 / NULL=1 to preserve the distinction through AND/OR.
    fn to_logical(&self, v: &Value) -> Result<Logical, EvalError> {
        match v {
            Value::Bool(b) => Ok(Logical::Bool(*b)),
            Value::Missing => Ok(Logical::Missing),
            Value::Null => Ok(Logical::Null),
            other => match self.type_err(|| {
                format!(
                    "logical operator requires a boolean, found {}",
                    other.kind().name()
                )
            })? {
                Value::Missing => Ok(Logical::Missing),
                _ => Ok(Logical::Missing),
            },
        }
    }

    fn like(
        &self,
        expr: &CoreExpr,
        pattern: &CoreExpr,
        escape: Option<&CoreExpr>,
        negated: bool,
        env: &Env,
    ) -> Result<Value, EvalError> {
        let text = self.expr(expr, env)?;
        let pat = self.expr(pattern, env)?;
        let esc = match escape {
            Some(e) => Some(self.expr(e, env)?),
            None => None,
        };
        self.like_values(&text, &pat, esc.as_ref(), negated)
    }

    /// The value-level half of LIKE — shared between the tree-walker and
    /// the bytecode VM.
    fn like_values(
        &self,
        text: &Value,
        pat: &Value,
        esc: Option<&Value>,
        negated: bool,
    ) -> Result<Value, EvalError> {
        for v in [Some(text), Some(pat), esc].into_iter().flatten() {
            if v.is_missing() {
                return Ok(Value::Missing);
            }
            if v.is_null() {
                return Ok(Value::Null);
            }
        }
        let (text, pat) = match (&text, &pat) {
            (Value::Str(t), Value::Str(p)) => (t, p),
            _ => {
                return self.type_err(|| {
                    format!(
                        "LIKE requires strings, found {} and {}",
                        text.kind().name(),
                        pat.kind().name()
                    )
                });
            }
        };
        let esc_char = match &esc {
            None => None,
            Some(Value::Str(s)) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Some(c),
                    _ => {
                        return self.type_err(|| "ESCAPE must be a single character".to_string());
                    }
                }
            }
            Some(other) => {
                return self.type_err(|| {
                    format!("ESCAPE must be a string, found {}", other.kind().name())
                });
            }
        };
        match like_match(text, pat, esc_char) {
            Ok(m) => Ok(Value::Bool(m != negated)),
            Err(_) => self.type_err(|| "malformed LIKE pattern".to_string()),
        }
    }

    /// SQL IN semantics under 3VL: TRUE if any element equals, else NULL
    /// if any comparison was absent, else FALSE. An IN over a subquery
    /// streams the subquery's rows and stops at the first TRUE.
    fn in_predicate(
        &self,
        expr: &CoreExpr,
        collection: &CoreExpr,
        env: &Env,
    ) -> Result<Value, EvalError> {
        let needle = self.expr(expr, env)?;
        if needle.is_missing() {
            return Ok(Value::Missing);
        }
        if let CoreExpr::Subquery {
            plan,
            coercion: Coercion::Collection,
        } = collection
        {
            if produces_elements(&plan.op) {
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                if let Some(st) = &self.stats {
                    st.add_subquery_invocation();
                }
                let mut saw_absent = false;
                for row in self.element_stream(&plan.op, env) {
                    let item = self.single_attr(&row?)?;
                    match sql_eq(&needle, &item) {
                        Value::Bool(true) => return Ok(Value::Bool(true)),
                        Value::Bool(false) => {}
                        _ => saw_absent = true,
                    }
                }
                return Ok(if saw_absent {
                    Value::Null
                } else {
                    Value::Bool(false)
                });
            }
        }
        let hay = self.expr(collection, env)?;
        self.in_values(&needle, &hay)
    }

    /// The value-level membership half of IN (needle already known to be
    /// non-MISSING) — shared between the tree-walker and the bytecode VM.
    fn in_values(&self, needle: &Value, hay: &Value) -> Result<Value, EvalError> {
        if hay.is_missing() {
            return Ok(Value::Missing);
        }
        if hay.is_null() {
            return Ok(Value::Null);
        }
        let items = match hay.as_elements() {
            Some(items) => items,
            None => {
                return self
                    .type_err(|| format!("IN requires a collection, found {}", hay.kind().name()));
            }
        };
        if needle.is_null() {
            return Ok(Value::Null);
        }
        let mut saw_absent = false;
        for item in items {
            match sql_eq(needle, item) {
                Value::Bool(true) => return Ok(Value::Bool(true)),
                Value::Bool(false) => {}
                _ => saw_absent = true,
            }
        }
        Ok(if saw_absent {
            Value::Null
        } else {
            Value::Bool(false)
        })
    }

    fn coll_agg(
        &self,
        func: AggFunc,
        distinct: bool,
        input: &CoreExpr,
        env: &Env,
    ) -> Result<Value, EvalError> {
        // Pipelined fast path: COLL_AGG over a plain SELECT VALUE subquery
        // aggregates incrementally instead of materializing the bag —
        // legal because the materialization is only conceptual (§V-C).
        if self.config.pipeline_aggregates && !distinct {
            if let CoreExpr::Subquery {
                plan,
                coercion: Coercion::Bag,
            } = input
            {
                if let CoreOp::Project {
                    input: sub_in,
                    expr,
                    distinct: false,
                } = &plan.op
                {
                    let mut acc = agg::Accumulator::new(func);
                    if let Some(r) = self.try_fused(sub_in, expr, env, |v| {
                        acc.push(&v);
                        Ok(())
                    }) {
                        r?;
                    } else {
                        drain_batched(self.binding_stream(sub_in, env), self.batch_size(), |b| {
                            acc.push(&self.expr(expr, &b)?);
                            Ok(())
                        })?;
                    }
                    return match acc.finish() {
                        Ok(v) => Ok(v),
                        Err(e) => self.agg_err(e),
                    };
                }
            }
        }
        let v = self.expr(input, env)?;
        if v.is_null() {
            return Ok(Value::Null);
        }
        if v.is_missing() {
            return Ok(Value::Missing);
        }
        let items = match v.as_elements() {
            Some(items) => items.to_vec(),
            None => {
                return self.type_err(|| {
                    format!(
                        "{} requires a collection, found {}",
                        func.coll_name(),
                        v.kind().name()
                    )
                });
            }
        };
        let items = if distinct {
            agg::distinct_elements(&items)
        } else {
            items
        };
        match agg::apply(func, &items) {
            Ok(v) => Ok(v),
            Err(e) => self.agg_err(e),
        }
    }

    fn agg_err(&self, e: agg::AggError) -> Result<Value, EvalError> {
        match e {
            agg::AggError::BadElement { func, kind } => self.type_err(|| {
                format!(
                    "{} over a non-aggregatable {} element",
                    func.coll_name(),
                    kind
                )
            }),
            agg::AggError::Arithmetic(m) => match self.config.typing {
                TypingMode::Permissive => Ok(Value::Missing),
                TypingMode::StrictError => Err(EvalError::Arithmetic(m)),
            },
        }
    }

    /// SQL subquery coercion (§V-A), applied only in SQL-compat mode by
    /// the planner's choice of [`Coercion`].
    fn coerce_subquery(&self, v: Value, coercion: Coercion) -> Result<Value, EvalError> {
        match coercion {
            Coercion::Bag => Ok(v),
            Coercion::Scalar => {
                let items = match v.as_elements() {
                    Some(items) => items,
                    None => return Ok(v), // PIVOT subquery: already a value
                };
                match items.len() {
                    0 => Ok(Value::Null),
                    1 => self.single_attr(&items[0]),
                    n => match self.config.typing {
                        TypingMode::Permissive => Ok(Value::Missing),
                        TypingMode::StrictError => Err(EvalError::Cardinality(format!(
                            "scalar subquery produced {n} rows"
                        ))),
                    },
                }
            }
            Coercion::Collection => {
                let items = match v.into_elements() {
                    Some(items) => items,
                    None => {
                        return self
                            .type_err(|| "IN subquery did not produce a collection".to_string());
                    }
                };
                let mut out = Vec::with_capacity(items.len());
                for item in &items {
                    out.push(self.single_attr(item)?);
                }
                Ok(Value::Bag(out))
            }
        }
    }

    fn single_attr(&self, row: &Value) -> Result<Value, EvalError> {
        match row {
            Value::Tuple(t) if t.len() == 1 => Ok(t.iter().next().expect("len 1").1.clone()),
            other => match self.config.typing {
                TypingMode::Permissive => Ok(Value::Missing),
                TypingMode::StrictError => Err(EvalError::Cardinality(format!(
                    "SQL subquery row must have exactly one attribute, found {other}"
                ))),
            },
        }
    }
}

// =====================================================================
// Helpers
// =====================================================================

/// 3VL with two absent values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Logical {
    Bool(bool),
    Null,
    Missing,
}

/// Direct int arithmetic/comparison for the VM's `Bin` dispatch.
/// `None` (overflow, division, concat, logic) defers to the general
/// numeric tower so its promotion and error semantics stay canonical.
#[inline]
fn int_fast_binop(op: BinOp, a: i64, b: i64) -> Option<Value> {
    match op {
        BinOp::Add => a.checked_add(b).map(Value::Int),
        BinOp::Sub => a.checked_sub(b).map(Value::Int),
        BinOp::Mul => a.checked_mul(b).map(Value::Int),
        BinOp::Eq => Some(Value::Bool(a == b)),
        BinOp::NotEq => Some(Value::Bool(a != b)),
        BinOp::Lt => Some(Value::Bool(a < b)),
        BinOp::LtEq => Some(Value::Bool(a <= b)),
        BinOp::Gt => Some(Value::Bool(a > b)),
        BinOp::GtEq => Some(Value::Bool(a >= b)),
        _ => None,
    }
}

fn and3(a: Logical, b: Logical) -> Value {
    use Logical::*;
    match (a, b) {
        (Bool(false), _) | (_, Bool(false)) => Value::Bool(false),
        (Bool(true), Bool(true)) => Value::Bool(true),
        // An absent operand dominates TRUE; MISSING beats NULL (pure
        // propagation, §IV-B case 3).
        (Missing, _) | (_, Missing) => Value::Missing,
        _ => Value::Null,
    }
}

fn or3(a: Logical, b: Logical) -> Value {
    use Logical::*;
    match (a, b) {
        (Bool(true), _) | (_, Bool(true)) => Value::Bool(true),
        (Bool(false), Bool(false)) => Value::Bool(false),
        (Missing, _) | (_, Missing) => Value::Missing,
        _ => Value::Null,
    }
}

fn logical_and(a: &Value, b: &Value) -> Value {
    let to = |v: &Value| match v {
        Value::Bool(b) => Logical::Bool(*b),
        Value::Null => Logical::Null,
        _ => Logical::Missing,
    };
    and3(to(a), to(b))
}

fn logical_not(v: &Value) -> Value {
    match v {
        Value::Bool(b) => Value::Bool(!b),
        other => other.clone(),
    }
}

fn type_test(v: &Value, name: &str) -> bool {
    match name {
        "ARRAY" | "LIST" => matches!(v, Value::Array(_)),
        "BAG" => matches!(v, Value::Bag(_)),
        "TUPLE" | "STRUCT" | "OBJECT" => matches!(v, Value::Tuple(_)),
        "STRING" | "VARCHAR" | "TEXT" => matches!(v, Value::Str(_)),
        "NUMBER" | "NUMERIC" => v.is_number(),
        "INT" | "INTEGER" | "BIGINT" => matches!(v, Value::Int(_)),
        "FLOAT" | "DOUBLE" => matches!(v, Value::Float(_)),
        "DECIMAL" => matches!(v, Value::Decimal(_)),
        "BOOLEAN" | "BOOL" => matches!(v, Value::Bool(_)),
        "COLLECTION" => v.is_collection(),
        "SCALAR" => v.is_scalar(),
        _ => false,
    }
}

/// Structural dedup preserving first occurrences (DISTINCT). Hashes each
/// item *by reference* with [`hash_value`] — the same stream a
/// single-element `GroupKey` would feed its hasher, minus the deep clone —
/// then confirms candidates with `deep_eq` (hash_value is deep_eq-
/// consistent, see the `hash_is_consistent_with_deep_eq` property).
fn dedupe(items: Vec<Value>, stats: Option<&StatsCollector>) -> Vec<Value> {
    let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut out: Vec<Value> = Vec::with_capacity(items.len());
    for item in items {
        let key = structural_hash(&item);
        let bucket = seen.entry(key).or_default();
        let mut dup = false;
        for &i in bucket.iter() {
            if let Some(st) = stats {
                st.add_dedupe_probes(1);
            }
            if deep_eq(&out[i], &item) {
                dup = true;
                break;
            }
        }
        if !dup {
            bucket.push(out.len());
            out.push(item);
        }
    }
    out
}

/// 64-bit structural hash of a value, consistent with `deep_eq`.
fn structural_hash(v: &Value) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;
    let mut h = DefaultHasher::new();
    hash_value(v, &mut h);
    h.finish()
}

/// 64-bit structural hash of a key tuple — the same scheme `dedupe` and
/// set operations use, extended over the sequence.
fn joint_hash(keys: &[Value]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;
    let mut h = DefaultHasher::new();
    for k in keys {
        hash_value(k, &mut h);
    }
    h.finish()
}

/// Whether a value-producing operator yields a *collection of elements*
/// (`true` for everything except PIVOT — whose result is a single tuple —
/// possibly under WITH). This is the condition for streaming its output
/// element-wise through [`Evaluator::element_stream`].
fn produces_elements(op: &CoreOp) -> bool {
    match op {
        CoreOp::Pivot { .. } => false,
        CoreOp::With { body, .. } => produces_elements(body),
        _ => true,
    }
}

/// Where a scan's rows come from (see [`Evaluator::scan_source`]).
enum ScanSource {
    /// A stored catalog collection, borrowed via its `Arc` snapshot.
    Shared(Arc<Value>),
    /// A computed value owned by this scan.
    Owned(Value),
}

/// A lazy scan over a shared catalog collection: elements are cloned one
/// at a time as they are pulled, so `LIMIT k` over an N-row stored
/// collection clones (and counts) k rows, not N.
struct SharedScan<'s, 'a> {
    ev: &'s Evaluator<'a>,
    source: Arc<Value>,
    idx: usize,
    as_var: Rc<str>,
    at_var: Option<Rc<str>>,
    env: Env,
}

impl<'s, 'a> Iterator for SharedScan<'s, 'a> {
    type Item = Result<Env, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        let (items, is_array) = match &*self.source {
            Value::Bag(items) => (items, false),
            Value::Array(items) => (items, true),
            _ => unreachable!("SharedScan is only built over collections"),
        };
        let item = items.get(self.idx)?.clone();
        let i = self.idx;
        self.idx += 1;
        if let Some(st) = &self.ev.stats {
            st.add_rows_scanned(1);
        }
        let mut e = self.env.bind(self.as_var.clone(), item);
        if let Some(at) = &self.at_var {
            if is_array {
                e = e.bind(at.clone(), Value::Int(i as i64));
            } else {
                // Bags are unordered: AT has no meaningful value.
                match self.ev.config.typing {
                    TypingMode::Permissive => e = e.bind(at.clone(), Value::Missing),
                    TypingMode::StrictError => {
                        return Some(Err(EvalError::Type(
                            "AT position variable over an unordered bag".to_string(),
                        )));
                    }
                }
            }
        }
        Some(Ok(e))
    }
}

impl<'s, 'a> Stream<Env> for SharedScan<'s, 'a> {
    fn next_batch(&mut self, out: &mut Vec<Env>, max: usize) -> Result<(), EvalError> {
        let (items, is_array) = match &*self.source {
            Value::Bag(items) => (items, false),
            Value::Array(items) => (items, true),
            _ => unreachable!("SharedScan is only built over collections"),
        };
        let end = (self.idx.saturating_add(max)).min(items.len());
        if self.idx >= end {
            return Ok(());
        }
        if self.at_var.is_some()
            && !is_array
            && matches!(self.ev.config.typing, TypingMode::StrictError)
        {
            // The row path counts the pull before surfacing the AT error.
            if let Some(st) = &self.ev.stats {
                st.add_rows_scanned(1);
            }
            self.idx = items.len();
            return Err(EvalError::Type(
                "AT position variable over an unordered bag".to_string(),
            ));
        }
        if let Some(st) = &self.ev.stats {
            st.add_rows_scanned((end - self.idx) as u64);
        }
        out.reserve(end - self.idx);
        for (i, item) in items.iter().enumerate().take(end).skip(self.idx) {
            let mut e = self.env.bind(self.as_var.clone(), item.clone());
            if let Some(at) = &self.at_var {
                let pos = if is_array {
                    Value::Int(i as i64)
                } else {
                    Value::Missing
                };
                e = e.bind(at.clone(), pos);
            }
            out.push(e);
        }
        self.idx = end;
        Ok(())
    }
}

/// An owned scan source (a computed collection): the batch path binds a
/// whole run of elements per pull and amortizes the scan counter.
struct OwnedScan<'s, 'a> {
    ev: &'s Evaluator<'a>,
    items: std::vec::IntoIter<Value>,
    /// Position of the next element (AT values for arrays).
    next_idx: usize,
    is_array: bool,
    /// Strict mode refuses AT over an unordered bag — checked per pulled
    /// row, after the scan counter, like the row path always did.
    strict_bag_at: bool,
    as_var: Rc<str>,
    at_var: Option<Rc<str>>,
    env: Env,
}

impl<'s, 'a> OwnedScan<'s, 'a> {
    fn bind_row(&self, item: Value, i: usize) -> Env {
        let mut e = self.env.bind(self.as_var.clone(), item);
        if let Some(at) = &self.at_var {
            let pos = if self.is_array {
                Value::Int(i as i64)
            } else {
                Value::Missing
            };
            e = e.bind(at.clone(), pos);
        }
        e
    }
}

impl<'s, 'a> Iterator for OwnedScan<'s, 'a> {
    type Item = Result<Env, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.items.next()?;
        if let Some(st) = &self.ev.stats {
            st.add_rows_scanned(1);
        }
        if self.strict_bag_at {
            return Some(Err(EvalError::Type(
                "AT position variable over an unordered bag".to_string(),
            )));
        }
        let i = self.next_idx;
        self.next_idx += 1;
        Some(Ok(self.bind_row(item, i)))
    }
}

impl<'s, 'a> Stream<Env> for OwnedScan<'s, 'a> {
    fn next_batch(&mut self, out: &mut Vec<Env>, max: usize) -> Result<(), EvalError> {
        if self.items.len() == 0 || max == 0 {
            return Ok(());
        }
        if self.strict_bag_at {
            if self.items.next().is_none() {
                return Ok(());
            }
            if let Some(st) = &self.ev.stats {
                st.add_rows_scanned(1);
            }
            return Err(EvalError::Type(
                "AT position variable over an unordered bag".to_string(),
            ));
        }
        let take = self.items.len().min(max);
        if let Some(st) = &self.ev.stats {
            st.add_rows_scanned(take as u64);
        }
        out.reserve(take);
        for _ in 0..take {
            let item = self.items.next().expect("length checked");
            let i = self.next_idx;
            self.next_idx += 1;
            out.push(self.bind_row(item, i));
        }
        Ok(())
    }
}

/// `SELECT VALUE` as a stream: maps the projection over the input
/// bindings. The batch path evaluates a whole pulled batch per call —
/// the inner request passes `max` through, so a LIMIT above still bounds
/// how much of the input is materialized.
struct ProjectStream<'s, 'a> {
    ev: &'s Evaluator<'a>,
    expr: &'s CoreExpr,
    inner: BindingStream<'s>,
    buf: Vec<Env>,
    done: bool,
}

impl<'s, 'a> Iterator for ProjectStream<'s, 'a> {
    type Item = Result<Value, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.inner.next() {
            None => {
                self.done = true;
                None
            }
            Some(Err(e)) => {
                self.done = true;
                Some(Err(e))
            }
            Some(Ok(b)) => Some(self.ev.expr(self.expr, &b)),
        }
    }
}

impl<'s, 'a> Stream<Value> for ProjectStream<'s, 'a> {
    fn next_batch(&mut self, out: &mut Vec<Value>, max: usize) -> Result<(), EvalError> {
        if self.done {
            return Ok(());
        }
        self.buf.clear();
        let r = self.inner.next_batch(&mut self.buf, max);
        let got = self.buf.len();
        let mut err = None;
        for b in self.buf.drain(..) {
            if err.is_some() {
                break;
            }
            match self.ev.expr(self.expr, &b) {
                Ok(v) => out.push(v),
                Err(e) => err = Some(e),
            }
        }
        if let Some(e) = err {
            self.done = true;
            return Err(e);
        }
        if let Err(e) = r {
            self.done = true;
            return Err(e);
        }
        if got == 0 {
            self.done = true;
        }
        Ok(())
    }
}

/// WHERE as a stream: keeps bindings whose predicate is exactly TRUE.
/// The batch path filters a whole pulled batch per call, re-pulling
/// until something passes or the input is exhausted (so callers see the
/// protocol's "empty append means exhausted" invariant).
struct FilterStream<'s, 'a> {
    ev: &'s Evaluator<'a>,
    pred: &'s CoreExpr,
    inner: BindingStream<'s>,
    buf: Vec<Env>,
    done: bool,
}

impl<'s, 'a> Iterator for FilterStream<'s, 'a> {
    type Item = Result<Env, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match self.inner.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Some(Ok(b)) => match self.ev.expr(self.pred, &b) {
                    Ok(Value::Bool(true)) => return Some(Ok(b)),
                    Ok(_) => {}
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                },
            }
        }
    }
}

impl<'s, 'a> Stream<Env> for FilterStream<'s, 'a> {
    fn next_batch(&mut self, out: &mut Vec<Env>, max: usize) -> Result<(), EvalError> {
        if self.done {
            return Ok(());
        }
        let start = out.len();
        while out.len() == start {
            self.buf.clear();
            let r = self.inner.next_batch(&mut self.buf, max);
            let got = self.buf.len();
            let mut err = None;
            for b in self.buf.drain(..) {
                if err.is_some() {
                    break;
                }
                match self.ev.expr(self.pred, &b) {
                    Ok(Value::Bool(true)) => out.push(b),
                    Ok(_) => {}
                    Err(e) => err = Some(e),
                }
            }
            if let Some(e) = err {
                self.done = true;
                return Err(e);
            }
            if let Err(e) = r {
                self.done = true;
                return Err(e);
            }
            if got == 0 {
                self.done = true;
                break;
            }
        }
        Ok(())
    }
}

/// Left-correlated FROM product (comma lists, UNNEST): for each left
/// binding, the right item streams in the extended environment. The
/// batch path drains the current right stream batch-at-a-time; left rows
/// still arrive one at a time (each re-opens the right side).
struct CorrelateStream<'s, 'a> {
    ev: &'s Evaluator<'a>,
    right: &'s CoreFrom,
    whole: &'s CoreOp,
    left: BindingStream<'s>,
    cur: Option<BindingStream<'s>>,
    done: bool,
}

impl<'s, 'a> Iterator for CorrelateStream<'s, 'a> {
    type Item = Result<Env, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if let Some(cur) = &mut self.cur {
                match cur.next() {
                    Some(Ok(b)) => return Some(Ok(b)),
                    Some(Err(e)) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                    None => self.cur = None,
                }
            }
            match self.left.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Some(Ok(l)) => {
                    self.cur = Some(self.ev.from_stream(self.right, self.whole, &l));
                }
            }
        }
    }
}

impl<'s, 'a> Stream<Env> for CorrelateStream<'s, 'a> {
    fn next_batch(&mut self, out: &mut Vec<Env>, max: usize) -> Result<(), EvalError> {
        if self.done {
            return Ok(());
        }
        let start = out.len();
        loop {
            if out.len() - start >= max {
                return Ok(());
            }
            if let Some(cur) = self.cur.as_mut() {
                let before = out.len();
                let want = max - (before - start);
                let r = cur.next_batch(out, want);
                let exhausted = out.len() == before;
                if let Err(e) = r {
                    self.done = true;
                    return Err(e);
                }
                if exhausted {
                    self.cur = None;
                }
                continue;
            }
            match self.left.next() {
                None => {
                    self.done = true;
                    return Ok(());
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Err(e);
                }
                Some(Ok(l)) => {
                    self.cur = Some(self.ev.from_stream(self.right, self.whole, &l));
                }
            }
        }
    }
}

/// Fully drains a stream through the batch protocol, calling `f` per
/// row — the batched replacement for a `for` loop over the stream. Rows
/// that arrived before a mid-batch error are processed first, matching
/// the row-at-a-time order of effects exactly.
fn drain_batched<T>(
    mut stream: Box<dyn Stream<T> + '_>,
    batch_size: usize,
    mut f: impl FnMut(T) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    let mut batch: Vec<T> = Vec::new();
    loop {
        let r = stream.next_batch(&mut batch, batch_size);
        let got = batch.len();
        let mut err = None;
        for v in batch.drain(..) {
            if err.is_some() {
                break;
            }
            if let Err(e) = f(v) {
                err = Some(e);
            }
        }
        if let Some(e) = err {
            return Err(e);
        }
        r?;
        if got == 0 {
            return Ok(());
        }
    }
}

/// A materialized hash-join right side: surviving rows with their key
/// tuples, bucketed by [`joint_hash`]. Holds the [`MatGauge`] that keeps
/// the build rows counted as live until the probe finishes.
struct JoinBuild<'s> {
    rows: Vec<(Env, Vec<Value>)>,
    table: HashMap<u64, Vec<usize>>,
    #[allow(dead_code)] // held for its Drop (live-row accounting)
    gauge: MatGauge<'s>,
}

/// One spilled build partition after [`Evaluator::load_build_partition`]:
/// either a probe-ready table, or the finer-grained runs it re-scattered
/// into because it did not fit by itself.
enum BuildLoad<'s> {
    Table {
        rows: Vec<(Env, Vec<Value>)>,
        table: HashMap<u64, Vec<usize>>,
        #[allow(dead_code)] // held for its Drop (live-row accounting)
        gauge: MatGauge<'s>,
    },
    Overflow {
        build_runs: Vec<SpillRun>,
    },
}

/// Which per-right-row test a [`NestedLoop`] applies.
enum RowTest<'s> {
    /// The plan's ON condition.
    On(&'s CoreExpr),
    /// A hash join running in nested-loop fallback: the original ON is
    /// exactly `left_pred ∧ right_pred ∧ keys ∧ residual`, re-checked per
    /// (left, right) pair.
    Split {
        keys: &'s [(CoreExpr, CoreExpr)],
        left_pred: Option<&'s CoreExpr>,
        right_pred: Option<&'s CoreExpr>,
        residual: Option<&'s CoreExpr>,
    },
}

/// Streaming nested-loop join: pulls left rows one at a time, re-opens
/// the right stream per left row, and emits matches as they are found —
/// a LIMIT above the join stops both scans mid-flight. LEFT joins pad
/// the right-side variables with NULL when a left row's right stream
/// drains without a match.
struct NestedLoop<'s, 'a> {
    ev: &'s Evaluator<'a>,
    kind: CoreJoinKind,
    left: BindingStream<'s>,
    right: &'s CoreFrom,
    whole: &'s CoreOp,
    names: Vec<Rc<str>>,
    test: RowTest<'s>,
    /// The left row currently probing: its env, its right stream, and
    /// whether it has matched yet.
    cur: Option<(Env, BindingStream<'s>, bool)>,
    scanned: bool,
    done: bool,
}

impl<'s, 'a> NestedLoop<'s, 'a> {
    fn new(
        ev: &'s Evaluator<'a>,
        kind: CoreJoinKind,
        left: BindingStream<'s>,
        right: &'s CoreFrom,
        whole: &'s CoreOp,
        names: Vec<Rc<str>>,
        test: RowTest<'s>,
    ) -> Self {
        NestedLoop {
            ev,
            kind,
            left,
            right,
            whole,
            names,
            test,
            cur: None,
            scanned: false,
            done: false,
        }
    }

    fn passes(&self, r: &Env) -> Result<bool, EvalError> {
        match &self.test {
            RowTest::On(on) => Ok(matches!(self.ev.expr(on, r)?, Value::Bool(true))),
            RowTest::Split {
                keys,
                left_pred,
                right_pred,
                residual,
            } => {
                for p in [left_pred, right_pred].into_iter().flatten() {
                    if !matches!(self.ev.expr(p, r)?, Value::Bool(true)) {
                        return Ok(false);
                    }
                }
                for (lk, rk) in keys.iter() {
                    let a = self.ev.expr(lk, r)?;
                    let b = self.ev.expr(rk, r)?;
                    if !matches!(sql_eq(&a, &b), Value::Bool(true)) {
                        return Ok(false);
                    }
                }
                if let Some(p) = residual {
                    if !matches!(self.ev.expr(p, r)?, Value::Bool(true)) {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    fn pad(&self, l: &Env) -> Env {
        // SQL left join: unmatched rows pad the right-side variables
        // with NULL.
        let mut padded = l.clone();
        for name in &self.names {
            padded = padded.bind(name.clone(), Value::Null);
        }
        padded
    }
}

impl<'s, 'a> Iterator for NestedLoop<'s, 'a> {
    type Item = Result<Env, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            // The inner loop can spin through many right rows without
            // emitting (no matches), so it ticks the deadline itself —
            // the per-pull wrapper outside never sees those iterations.
            if let Some(g) = self.ev.govern.as_watcher() {
                if let Err(e) = g.tick() {
                    self.done = true;
                    return Some(Err(e));
                }
            }
            if self.cur.is_some() {
                // Pull the next right row in a scope of its own, so the
                // test below can borrow `self` again.
                let step = {
                    let (_, rights, _) = self.cur.as_mut().expect("checked above");
                    rights.next()
                };
                match step {
                    Some(Err(e)) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                    Some(Ok(r)) => {
                        if let Some(st) = &self.ev.stats {
                            st.add_join_probes(1);
                        }
                        match self.passes(&r) {
                            Err(e) => {
                                self.done = true;
                                return Some(Err(e));
                            }
                            Ok(true) => {
                                self.cur.as_mut().expect("checked above").2 = true;
                                return Some(Ok(r));
                            }
                            Ok(false) => continue,
                        }
                    }
                    None => {
                        let (lenv, _, matched) = self.cur.take().expect("checked above");
                        if !matched && self.kind == CoreJoinKind::Left {
                            return Some(Ok(self.pad(&lenv)));
                        }
                        continue;
                    }
                }
            }
            match self.left.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Some(Ok(l)) => {
                    if self.scanned {
                        if let Some(st) = &self.ev.stats {
                            st.add_right_rescans(1);
                        }
                    }
                    let rights = self.ev.from_stream(self.right, self.whole, &l);
                    self.scanned = true;
                    self.cur = Some((l, rights, false));
                }
            }
        }
    }
}

// The nested-loop join stays row-at-a-time even under batching: each
// produced row can re-open the right side, so there is no run of work to
// amortize — the default shim preserves its per-row tick semantics.
impl<'s, 'a> Stream<Env> for NestedLoop<'s, 'a> {}

/// Streaming hash-join probe: the build side is already materialized
/// (tracked live by its gauge); left rows are pulled one at a time and
/// probed, so a LIMIT above the join stops the left scan early.
struct HashProbe<'s, 'a> {
    ev: &'s Evaluator<'a>,
    kind: CoreJoinKind,
    keys: &'s [(CoreExpr, CoreExpr)],
    left_pred: Option<&'s CoreExpr>,
    residual: Option<&'s CoreExpr>,
    names: Vec<Rc<str>>,
    build: JoinBuild<'s>,
    left: BindingStream<'s>,
    /// Rows produced by the current left row, drained before pulling the
    /// next one.
    pending: VecDeque<Env>,
    done: bool,
}

impl<'s, 'a> HashProbe<'s, 'a> {
    /// Probes the build table for one left row, queueing its matches.
    /// Bucket candidates are confirmed key-by-key with `deep_eq`
    /// (hash_value is deep_eq-consistent), which is exactly when
    /// `l.x = r.y` evaluates to TRUE for non-absent keys; the residual is
    /// then re-checked in the combined environment.
    fn probe(&mut self, l: &Env) -> Result<bool, EvalError> {
        // An empty build side matches nothing — and, like the nested
        // loop over an empty right side, evaluates no predicate or key
        // at all.
        if self.build.rows.is_empty() {
            return Ok(false);
        }
        if let Some(p) = self.left_pred {
            if !matches!(self.ev.expr(p, l)?, Value::Bool(true)) {
                return Ok(false);
            }
        }
        let mut kv = Vec::with_capacity(self.keys.len());
        for (lk, _) in self.keys {
            let v = self.ev.expr(lk, l)?;
            if v.is_absent() {
                return Ok(false);
            }
            kv.push(v);
        }
        let Some(bucket) = self.build.table.get(&joint_hash(&kv)) else {
            return Ok(false);
        };
        let mut matched = false;
        for &i in bucket {
            // A skewed bucket can hold many candidates per left pull;
            // tick the deadline per candidate like the nested loop does.
            if let Some(g) = self.ev.govern.as_watcher() {
                g.tick()?;
            }
            if let Some(st) = &self.ev.stats {
                st.add_join_probes(1);
            }
            let (renv, rkv) = &self.build.rows[i];
            if !kv.iter().zip(rkv).all(|(a, b)| deep_eq(a, b)) {
                continue;
            }
            let combined = combine_envs(l, renv, &self.names);
            if let Some(p) = self.residual {
                if !matches!(self.ev.expr(p, &combined)?, Value::Bool(true)) {
                    continue;
                }
            }
            matched = true;
            self.pending.push_back(combined);
        }
        Ok(matched)
    }
}

impl<'s, 'a> Iterator for HashProbe<'s, 'a> {
    type Item = Result<Env, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(e) = self.pending.pop_front() {
                return Some(Ok(e));
            }
            if self.done {
                return None;
            }
            match self.left.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Some(Ok(l)) => match self.probe(&l) {
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                    Ok(matched) => {
                        if !matched && self.kind == CoreJoinKind::Left {
                            let mut padded = l.clone();
                            for name in &self.names {
                                padded = padded.bind(name.clone(), Value::Null);
                            }
                            self.pending.push_back(padded);
                        }
                    }
                },
            }
        }
    }
}

impl<'s, 'a> Stream<Env> for HashProbe<'s, 'a> {
    fn next_batch(&mut self, out: &mut Vec<Env>, max: usize) -> Result<(), EvalError> {
        let start = out.len();
        loop {
            while out.len() - start < max {
                let Some(e) = self.pending.pop_front() else {
                    break;
                };
                out.push(e);
            }
            if out.len() - start >= max || self.done {
                return Ok(());
            }
            // The left side is still pulled one row at a time: a LIMIT
            // above the join must be able to stop the left scan early.
            match self.left.next() {
                None => {
                    self.done = true;
                    return Ok(());
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Err(e);
                }
                Some(Ok(l)) => match self.probe(&l) {
                    Err(e) => {
                        self.done = true;
                        return Err(e);
                    }
                    Ok(matched) => {
                        if !matched && self.kind == CoreJoinKind::Left {
                            let mut padded = l.clone();
                            for name in &self.names {
                                padded = padded.bind(name.clone(), Value::Null);
                            }
                            self.pending.push_back(padded);
                        }
                    }
                },
            }
        }
    }
}

/// Extends a left-row environment with the right side's variables from a
/// matched build row — the same bindings, in the same order, that
/// evaluating the right side under `l` would have produced.
/// SQL left join: unmatched probe rows pad the right-side variables with
/// NULL.
fn pad_left(l: &Env, right_vars: &[std::rc::Rc<str>]) -> Env {
    let mut padded = l.clone();
    for name in right_vars {
        padded = padded.bind(name.clone(), Value::Null);
    }
    padded
}

fn combine_envs(l: &Env, r: &Env, right_vars: &[std::rc::Rc<str>]) -> Env {
    let mut out = l.clone();
    for name in right_vars {
        if let Some(v) = r.get(name) {
            out = out.bind(name.clone(), v.clone());
        }
    }
    out
}

/// Stable sort of `(keys, payload)` rows honoring desc and nulls-first per
/// key. Absent values (MISSING and NULL) obey `nulls_first` as a block;
/// within the block the total order puts MISSING before NULL, and DESC —
/// which reverses the whole total order — therefore puts NULL before
/// MISSING (the block's *placement* stays governed by `nulls_first`).
/// Delegates to the one shared comparator ([`cmp_sort_keys`]) the external
/// merge and the top-k heap also use, so all sort paths provably agree.
fn sort_annotated<T>(rows: &mut [(Vec<Value>, T)], keys: &[CoreSortKey]) {
    rows.sort_by(|(a, _), (b, _)| cmp_sort_keys(keys, a, b));
}

/// Estimated in-memory footprint of a binding row: every visible binding's
/// name and value (the budget unit when a byte-denominated limit is set).
fn env_bytes(e: &Env) -> u64 {
    e.visible_bindings()
        .iter()
        .map(|(n, v)| 9 + n.len() as u64 + approx_value_bytes(v))
        .sum::<u64>()
        + 9
}

/// Serializes an environment for a spill file: the visible bindings
/// (innermost first), optionally restricted to `names` — a hash-join build
/// row only needs the right side's variables. Each binding becomes a
/// `[name, value]` pair.
fn encode_env(e: &Env, names: Option<&[Rc<str>]>) -> Value {
    let pairs: Vec<Value> = match names {
        Some(names) => names
            .iter()
            .filter_map(|n| {
                e.get(n)
                    .map(|v| Value::Array(vec![Value::Str(n.to_string()), v.clone()]))
            })
            .collect(),
        None => e
            .visible_bindings()
            .into_iter()
            .map(|(n, v)| Value::Array(vec![Value::Str(n.to_string()), v.clone()]))
            .collect(),
    };
    Value::Array(pairs)
}

/// Inverse of [`encode_env`]: rebinds the pairs (outermost first, so
/// innermost bindings shadow as before) onto `base`.
fn decode_env(v: Value, base: &Env) -> Result<Env, EvalError> {
    let Value::Array(pairs) = v else {
        return Err(EvalError::Resource(format!(
            "spill read failed: malformed binding row {v:?}"
        )));
    };
    let mut env = base.clone();
    for pair in pairs.into_iter().rev() {
        match pair {
            Value::Array(mut nv) if nv.len() == 2 => {
                let value = nv.pop().expect("len checked");
                match nv.pop().expect("len checked") {
                    Value::Str(name) => env = env.bind(name, value),
                    other => {
                        return Err(EvalError::Resource(format!(
                            "spill read failed: malformed binding name {other:?}"
                        )));
                    }
                }
            }
            other => {
                return Err(EvalError::Resource(format!(
                    "spill read failed: malformed binding pair {other:?}"
                )));
            }
        }
    }
    Ok(env)
}

/// Spill codec for binding rows (ORDER BY over bindings): an [`Env`]
/// round-trips as its visible bindings, rebuilt over the sort's base
/// environment.
struct EnvCodec {
    base: Env,
}

impl SpillCodec for EnvCodec {
    type Row = Env;
    fn encode(&self, row: &Env) -> Value {
        encode_env(row, None)
    }
    fn decode(&self, v: Value) -> Result<Env, EvalError> {
        decode_env(v, &self.base)
    }
    fn size(&self, row: &Env) -> u64 {
        env_bytes(row)
    }
}

/// Spill codec for output elements (ORDER BY over values): the element is
/// its own spilled form.
struct ValueCodec;

impl SpillCodec for ValueCodec {
    type Row = Value;
    fn encode(&self, row: &Value) -> Value {
        row.clone()
    }
    fn decode(&self, v: Value) -> Result<Value, EvalError> {
        Ok(v)
    }
    fn size(&self, row: &Value) -> u64 {
        approx_value_bytes(row)
    }
}

/// One resident row of a bounded top-k heap. The heap is a max-heap under
/// this ordering — sort keys first (via the shared comparator), arrival
/// order as the tie-break — so the row evicted is always the *greatest*,
/// and among equal keys the latest arrival, which reproduces the stable
/// sort's survivors exactly.
struct HeapEntry<'k, T> {
    keys: &'k [CoreSortKey],
    kv: Vec<Value>,
    seq: u64,
    bytes: u64,
    row: T,
}

impl<T> PartialEq for HeapEntry<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl<T> Eq for HeapEntry<'_, T> {}

impl<T> PartialOrd for HeapEntry<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<'_, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        cmp_sort_keys(self.keys, &self.kv, &other.kv).then(self.seq.cmp(&other.seq))
    }
}

/// A multiset of the right operand for INTERSECT/EXCEPT matching: hash
/// buckets of indices into an ownership pool, `deep_eq`-confirmed on probe
/// (the same scheme [`dedupe`] uses). `take` is amortized O(1) per left
/// element instead of the former O(|R|) linear pool scan.
struct RightMultiset<'s> {
    pool: Vec<Option<Value>>,
    buckets: HashMap<u64, Vec<usize>>,
    stats: Option<&'s StatsCollector>,
}

impl<'s> RightMultiset<'s> {
    fn new(right: Vec<Value>, stats: Option<&'s StatsCollector>) -> Self {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, v) in right.iter().enumerate() {
            buckets.entry(structural_hash(v)).or_default().push(i);
        }
        RightMultiset {
            pool: right.into_iter().map(Some).collect(),
            buckets,
            stats,
        }
    }

    /// Removes one occurrence structurally equal to `v`, if any. Taken
    /// indices leave their bucket, so duplicate-heavy inputs never
    /// re-probe consumed slots.
    fn take(&mut self, v: &Value) -> bool {
        let Some(bucket) = self.buckets.get_mut(&structural_hash(v)) else {
            return false;
        };
        for pos in 0..bucket.len() {
            let i = bucket[pos];
            let candidate = self.pool[i].as_ref().expect("taken slots leave the bucket");
            if let Some(st) = self.stats {
                st.add_setop_probes(1);
            }
            if deep_eq(candidate, v) {
                self.pool[i] = None;
                bucket.swap_remove(pos);
                return true;
            }
        }
        false
    }
}

/// Materialized set-operation semantics: the reference shape the
/// streaming [`Evaluator::set_op_stream`] must agree with (exercised by
/// the unit tests below; production queries run the stream).
#[cfg(test)]
fn eval_set_op(
    op: CoreSetOp,
    all: bool,
    left: Vec<Value>,
    right: Vec<Value>,
    stats: Option<&StatsCollector>,
) -> Vec<Value> {
    match (op, all) {
        (CoreSetOp::Union, true) => {
            let mut out = left;
            out.extend(right);
            out
        }
        (CoreSetOp::Union, false) => {
            let mut out = left;
            out.extend(right);
            dedupe(out, stats)
        }
        (CoreSetOp::Intersect, all) => {
            // Multiset intersection: keep each left element up to its
            // multiplicity in right.
            let mut pool = RightMultiset::new(right, stats);
            let mut out = Vec::new();
            for l in left {
                if pool.take(&l) {
                    out.push(l);
                }
            }
            if all {
                out
            } else {
                dedupe(out, stats)
            }
        }
        (CoreSetOp::Except, all) => {
            let mut pool = RightMultiset::new(right, stats);
            let mut out = Vec::new();
            for l in left {
                if !pool.take(&l) {
                    out.push(l);
                }
            }
            if all {
                out
            } else {
                dedupe(out, stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_tables_with_two_absent_values() {
        use Logical::*;
        assert_eq!(and3(Bool(false), Missing), Value::Bool(false));
        assert_eq!(and3(Bool(true), Missing), Value::Missing);
        assert_eq!(and3(Bool(true), Null), Value::Null);
        assert_eq!(and3(Null, Missing), Value::Missing);
        assert_eq!(or3(Bool(true), Missing), Value::Bool(true));
        assert_eq!(or3(Bool(false), Missing), Value::Missing);
        assert_eq!(or3(Bool(false), Null), Value::Null);
    }

    #[test]
    fn dedupe_is_structural_and_stable() {
        let items = vec![
            Value::Int(1),
            Value::Float(1.0),
            Value::Int(2),
            Value::Int(1),
        ];
        let out = dedupe(items, None);
        assert_eq!(out, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn set_ops_respect_multiplicity() {
        let l = vec![Value::Int(1), Value::Int(1), Value::Int(2)];
        let r = vec![Value::Int(1), Value::Int(3)];
        assert_eq!(
            eval_set_op(CoreSetOp::Intersect, true, l.clone(), r.clone(), None),
            vec![Value::Int(1)]
        );
        assert_eq!(
            eval_set_op(CoreSetOp::Except, true, l.clone(), r.clone(), None),
            vec![Value::Int(1), Value::Int(2)]
        );
        assert_eq!(
            eval_set_op(CoreSetOp::Union, false, l, r, None).len(),
            3 // {1, 2, 3}
        );
    }

    #[test]
    fn set_op_probes_scale_with_input_not_its_square() {
        // n disjoint-heavy inputs: the former linear pool scan did
        // O(n·m) deep_eq probes; the hash-bucketed multiset does at most
        // one confirm per left element (all values distinct).
        let n = 64;
        let l: Vec<Value> = (0..n).map(Value::Int).collect();
        let r: Vec<Value> = (0..n).map(Value::Int).collect();
        let stats = StatsCollector::default();
        let out = eval_set_op(CoreSetOp::Intersect, true, l, r, Some(&stats));
        assert_eq!(out.len(), n as usize);
        let probes = stats.snapshot().setop_probes;
        assert!(
            probes <= 2 * n as u64,
            "expected O(n) probes, got {probes} for n = {n}"
        );
    }

    #[test]
    fn sort_places_absent_values_per_nulls_first() {
        let keys = vec![CoreSortKey {
            expr: CoreExpr::Const(Value::Null), // unused by sort_annotated
            desc: false,
            nulls_first: false,
        }];
        let mut rows = vec![
            (vec![Value::Null], 0),
            (vec![Value::Int(2)], 1),
            (vec![Value::Missing], 2),
            (vec![Value::Int(1)], 3),
        ];
        sort_annotated(&mut rows, &keys);
        let order: Vec<i32> = rows.iter().map(|(_, p)| *p).collect();
        assert_eq!(order, vec![3, 1, 2, 0], "values first, then MISSING < NULL");
    }

    #[test]
    fn order_by_desc_reverses_missing_null_within_absent_block() {
        // DESC reverses the *whole* total order, including the
        // MISSING-before-NULL tie-break inside the absent block;
        // `nulls_first` alone still decides where the block goes.
        let keys = vec![CoreSortKey {
            expr: CoreExpr::Const(Value::Null),
            desc: true,
            nulls_first: false,
        }];
        let mut rows = vec![
            (vec![Value::Missing], 0),
            (vec![Value::Int(1)], 1),
            (vec![Value::Null], 2),
            (vec![Value::Int(2)], 3),
        ];
        sort_annotated(&mut rows, &keys);
        let order: Vec<i32> = rows.iter().map(|(_, p)| *p).collect();
        assert_eq!(
            order,
            vec![3, 1, 2, 0],
            "DESC: values descending, then NULL before MISSING"
        );
    }

    // =================================================================
    // LIMIT/OFFSET operand handling
    // =================================================================

    fn limits_under(
        typing: TypingMode,
        limit: Option<Value>,
        offset: Option<Value>,
    ) -> Result<(Option<usize>, usize), EvalError> {
        let catalog = Catalog::new();
        let ev = Evaluator::new(
            &catalog,
            EvalConfig {
                typing,
                ..EvalConfig::default()
            },
        );
        let limit = limit.map(CoreExpr::Const);
        let offset = offset.map(CoreExpr::Const);
        ev.limit_offset(limit.as_ref(), offset.as_ref(), &Env::new())
    }

    /// Runs `Limited` over an infallible source, collecting the output.
    fn limited(items: Vec<i32>, lim: Option<usize>, off: usize) -> Vec<i32> {
        Limited::new(items.into_iter().map(Ok::<i32, EvalError>), off, lim)
            .collect::<Result<Vec<i32>, EvalError>>()
            .unwrap()
    }

    #[test]
    fn limit_zero_and_offset_past_end_truncate() {
        let (lim, off) = limits_under(TypingMode::Permissive, Some(Value::Int(0)), None).unwrap();
        assert_eq!(limited(vec![1, 2, 3], lim, off), Vec::<i32>::new());

        let (lim, off) = limits_under(TypingMode::Permissive, None, Some(Value::Int(99))).unwrap();
        assert_eq!(limited(vec![1, 2, 3], lim, off), Vec::<i32>::new());
    }

    #[test]
    fn limit_offset_reject_non_integers_in_both_typing_modes() {
        // LIMIT/OFFSET counts sit outside the data domain: a bad operand
        // is a query error, not dirty data, so even permissive mode
        // refuses rather than producing MISSING (§IV's escape hatch is
        // for *data* heterogeneity).
        let bad = [
            Value::Float(1.5),
            Value::Str("2".into()),
            Value::Null,
            Value::Missing,
            Value::Int(-1),
        ];
        for mode in [TypingMode::Permissive, TypingMode::StrictError] {
            for v in &bad {
                assert!(
                    limits_under(mode, Some(v.clone()), None).is_err(),
                    "LIMIT {v:?} must error under {mode:?}"
                );
                assert!(
                    limits_under(mode, None, Some(v.clone())).is_err(),
                    "OFFSET {v:?} must error under {mode:?}"
                );
            }
        }
    }

    #[test]
    fn stats_collection_counts_scans_and_dedupe() {
        use sqlpp_plan::CoreFrom;
        let catalog = Catalog::new();
        let ev = Evaluator::new(
            &catalog,
            EvalConfig {
                collect_stats: true,
                ..EvalConfig::default()
            },
        );
        let scan = CoreOp::From {
            item: CoreFrom::Scan {
                expr: CoreExpr::Const(Value::Bag(vec![
                    Value::Int(1),
                    Value::Int(1),
                    Value::Int(2),
                ])),
                as_var: "x".into(),
                at_var: None,
            },
        };
        let q = CoreQuery {
            op: CoreOp::Project {
                input: Box::new(scan),
                expr: CoreExpr::Var("x".into()),
                distinct: true,
            },
        };
        let out = ev.run(&q).unwrap();
        assert_eq!(out, Value::Bag(vec![Value::Int(1), Value::Int(2)]));
        let stats = ev.stats_snapshot().expect("collect_stats was on");
        assert_eq!(stats.rows_scanned, 3);
        assert_eq!(stats.bindings_produced, 3);
        assert_eq!(stats.dedupe_probes, 1, "one hash hit confirmed by deep_eq");
        // Pre-order plan index 0 is the Project itself.
        let project = stats.op_at(0).expect("Project ran");
        assert_eq!((project.calls, project.rows_out), (1, 2));
        // DISTINCT materialized all three projected rows.
        assert_eq!(project.peak_rows, 3);
        assert_eq!(stats.peak_live_bindings, 3);
    }

    #[test]
    fn stats_are_absent_when_collection_is_off() {
        let catalog = Catalog::new();
        let ev = Evaluator::new(&catalog, EvalConfig::default());
        assert!(ev.stats_snapshot().is_none());
    }

    // =================================================================
    // Hash join
    // =================================================================

    /// `{k: …, v: n}`; a MISSING key means the attribute is absent.
    fn row(k: Value, v: i64) -> Value {
        let mut t = Tuple::new();
        match k {
            Value::Missing => {}
            k => t.insert("k", k),
        }
        t.insert("v", Value::Int(v));
        Value::Tuple(t)
    }

    fn scan_of(rows: Vec<Value>, var: &str) -> Box<CoreFrom> {
        Box::new(CoreFrom::Scan {
            expr: CoreExpr::Const(Value::Bag(rows)),
            as_var: var.into(),
            at_var: None,
        })
    }

    fn key_of(var: &str) -> CoreExpr {
        CoreExpr::Path(Box::new(CoreExpr::Var(var.into())), "k".into())
    }

    /// `SELECT VALUE [x, y] FROM <item>` — pairs joined rows for
    /// comparison.
    fn project_pairs(item: CoreFrom) -> CoreOp {
        CoreOp::Project {
            input: Box::new(CoreOp::From { item }),
            expr: CoreExpr::ArrayCtor(vec![CoreExpr::Var("x".into()), CoreExpr::Var("y".into())]),
            distinct: false,
        }
    }

    #[test]
    fn hash_join_agrees_with_nested_loop_on_absent_keys() {
        let catalog = Catalog::new();
        let lrows = vec![
            row(Value::Int(1), 10),
            row(Value::Null, 11),
            row(Value::Missing, 12),
            row(Value::Int(2), 13),
            row(Value::Int(9), 14),
        ];
        let rrows = vec![
            row(Value::Int(2), 20),
            row(Value::Null, 21),
            row(Value::Missing, 22),
            row(Value::Int(1), 23),
            row(Value::Int(1), 24),
        ];
        for typing in [TypingMode::Permissive, TypingMode::StrictError] {
            let ev = Evaluator::new(
                &catalog,
                EvalConfig {
                    typing,
                    ..EvalConfig::default()
                },
            );
            for kind in [CoreJoinKind::Inner, CoreJoinKind::Left] {
                let on = CoreExpr::Bin(BinOp::Eq, Box::new(key_of("x")), Box::new(key_of("y")));
                let nested = project_pairs(CoreFrom::Join {
                    kind,
                    left: scan_of(lrows.clone(), "x"),
                    right: scan_of(rrows.clone(), "y"),
                    on,
                    right_vars: vec!["y".into()],
                });
                let hashed = project_pairs(CoreFrom::HashJoin {
                    kind,
                    left: scan_of(lrows.clone(), "x"),
                    right: scan_of(rrows.clone(), "y"),
                    keys: vec![(key_of("x"), key_of("y"))],
                    left_pred: None,
                    right_pred: None,
                    residual: None,
                    right_vars: vec!["y".into()],
                });
                let want = ev.value_op(&nested, &Env::new()).unwrap();
                let got = ev.value_op(&hashed, &Env::new()).unwrap();
                assert_eq!(got, want, "{kind:?} under {typing:?}");
            }
        }
    }

    #[test]
    fn hash_join_residual_rejects_then_left_pads() {
        let catalog = Catalog::new();
        let ev = Evaluator::new(&catalog, EvalConfig::default());
        // Key matches but the residual (x.v < y.v) fails for l2.
        let lrows = vec![row(Value::Int(1), 10), row(Value::Int(1), 99)];
        let rrows = vec![row(Value::Int(1), 20)];
        let residual = CoreExpr::Bin(
            BinOp::Lt,
            Box::new(CoreExpr::Path(
                Box::new(CoreExpr::Var("x".into())),
                "v".into(),
            )),
            Box::new(CoreExpr::Path(
                Box::new(CoreExpr::Var("y".into())),
                "v".into(),
            )),
        );
        let hashed = project_pairs(CoreFrom::HashJoin {
            kind: CoreJoinKind::Left,
            left: scan_of(lrows, "x"),
            right: scan_of(rrows, "y"),
            keys: vec![(key_of("x"), key_of("y"))],
            left_pred: None,
            right_pred: None,
            residual: Some(residual),
            right_vars: vec!["y".into()],
        });
        let got = ev.value_op(&hashed, &Env::new()).unwrap();
        let Value::Bag(pairs) = got else {
            panic!("bag expected")
        };
        assert_eq!(pairs.len(), 2);
        // First left row matched; second padded with NULL.
        let Value::Array(second) = &pairs[1] else {
            panic!("array expected")
        };
        assert_eq!(second[1], Value::Null);
    }

    #[test]
    fn hash_join_probes_are_linear_nested_loop_quadratic() {
        let catalog = Catalog::new();
        let n = 50i64;
        let lrows: Vec<Value> = (0..n).map(|i| row(Value::Int(i), i)).collect();
        let rrows: Vec<Value> = (0..n).map(|i| row(Value::Int(i), -i)).collect();
        let hashed = project_pairs(CoreFrom::HashJoin {
            kind: CoreJoinKind::Inner,
            left: scan_of(lrows.clone(), "x"),
            right: scan_of(rrows.clone(), "y"),
            keys: vec![(key_of("x"), key_of("y"))],
            left_pred: None,
            right_pred: None,
            residual: None,
            right_vars: vec!["y".into()],
        });
        let ev = Evaluator::new(
            &catalog,
            EvalConfig {
                collect_stats: true,
                ..EvalConfig::default()
            },
        );
        let out = ev.value_op(&hashed, &Env::new()).unwrap();
        assert_eq!(out, {
            let Value::Bag(items) = ev
                .value_op(
                    &project_pairs(CoreFrom::Join {
                        kind: CoreJoinKind::Inner,
                        left: scan_of(lrows.clone(), "x"),
                        right: scan_of(rrows.clone(), "y"),
                        on: CoreExpr::Bin(BinOp::Eq, Box::new(key_of("x")), Box::new(key_of("y"))),
                        right_vars: vec!["y".into()],
                    }),
                    &Env::new(),
                )
                .unwrap()
                .clone()
            else {
                panic!()
            };
            Value::Bag(items)
        });
        let s = ev.stats_snapshot().unwrap();
        // The nested loop above contributed n·n probes and n-1 rescans;
        // the hash join contributed ≤ n probes, n build rows, 0 rescans.
        assert_eq!(s.join_build_rows, n as u64);
        assert_eq!(
            s.right_rescans,
            (n - 1) as u64,
            "only the nested loop rescans"
        );
        assert_eq!(s.join_probes, (n * n + n) as u64);
    }

    #[test]
    fn hash_join_empty_right_side_pads_without_evaluating_predicates() {
        let catalog = Catalog::new();
        // left_pred would error in strict mode if evaluated (NOT on an
        // int); over an empty right side the nested loop never evaluates
        // ON, and the hash probe must not either.
        let ev = Evaluator::new(
            &catalog,
            EvalConfig {
                typing: TypingMode::StrictError,
                ..EvalConfig::default()
            },
        );
        let hashed = project_pairs(CoreFrom::HashJoin {
            kind: CoreJoinKind::Left,
            left: scan_of(vec![row(Value::Int(1), 10)], "x"),
            right: scan_of(Vec::new(), "y"),
            keys: vec![(key_of("x"), key_of("y"))],
            left_pred: Some(CoreExpr::Un(
                UnOp::Not,
                Box::new(CoreExpr::Path(
                    Box::new(CoreExpr::Var("x".into())),
                    "v".into(),
                )),
            )),
            right_pred: None,
            residual: None,
            right_vars: vec!["y".into()],
        });
        let got = ev.value_op(&hashed, &Env::new()).unwrap();
        let Value::Bag(pairs) = got else {
            panic!("bag expected")
        };
        assert_eq!(pairs.len(), 1, "LEFT join pads the single left row");
    }
}
