//! A deliberately naive reference evaluator transcribing the paper's
//! Pseudocodes 1–2.
//!
//! > for each TUPLE e ∈ hr.emp_nest_tuples do
//! >   for each TUPLE p ∈ e.projects do
//! >     if p.name LIKE '%Security%' then output TUPLE …
//!
//! It supports exactly the SELECT–FROM–WHERE fragment the pseudocode
//! covers — left-correlated `FROM` collection items, a `WHERE` predicate,
//! and a `SELECT` list / `SELECT VALUE` projection — with no grouping,
//! ordering, joins, or subqueries. Its purpose is *differential testing*:
//! the streaming engine's output on this fragment must be bag-equal to
//! this transparent nested-loop semantics (see the workspace proptests).

use sqlpp_catalog::Catalog;
use sqlpp_plan::PlanConfig;
use sqlpp_syntax::ast::{FromItem, Query, SelectClause, SetExpr};
use sqlpp_value::Value;

use crate::env::Env;
use crate::error::EvalError;
use crate::interp::{EvalConfig, Evaluator};

/// Errors from the reference evaluator.
#[derive(Debug, Clone, PartialEq)]
pub enum ReferenceError {
    /// The query uses a feature outside the pseudocode fragment.
    Unsupported(&'static str),
    /// An underlying evaluation error.
    Eval(EvalError),
}

impl std::fmt::Display for ReferenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReferenceError::Unsupported(what) => {
                write!(f, "reference evaluator does not support {what}")
            }
            ReferenceError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReferenceError {}

/// Evaluates a SELECT–FROM–WHERE query by literal nested loops.
///
/// Implementation note: expressions are still evaluated through the
/// engine's expression evaluator (re-implementing scalar semantics twice
/// would test nothing); what this function replaces is the *clause
/// pipeline* — binding generation, filtering, and projection are explicit
/// nested loops exactly as printed in the paper.
pub fn eval_sfw(query: &Query, catalog: &Catalog) -> Result<Value, ReferenceError> {
    eval_sfw_config(query, catalog, EvalConfig::default())
}

/// [`eval_sfw`] under an explicit evaluator configuration, so the
/// differential tests can pit the streaming engine against the
/// materialized nested loops in *both* typing modes: permissive runs must
/// produce identical bags, stop-on-error runs must surface an error on
/// the same inputs.
pub fn eval_sfw_config(
    query: &Query,
    catalog: &Catalog,
    config: EvalConfig,
) -> Result<Value, ReferenceError> {
    let block = match &query.body {
        SetExpr::Block(b) => b,
        SetExpr::SetOp { .. } => return Err(ReferenceError::Unsupported("set operations")),
    };
    if !query.ctes.is_empty() {
        return Err(ReferenceError::Unsupported("WITH"));
    }
    if !query.order_by.is_empty() || query.limit.is_some() || query.offset.is_some() {
        return Err(ReferenceError::Unsupported("ORDER BY / LIMIT"));
    }
    if block.group_by.is_some() || block.having.is_some() || !block.lets.is_empty() {
        return Err(ReferenceError::Unsupported("GROUP BY / HAVING / LET"));
    }
    let mut items = Vec::new();
    for item in &block.from {
        match item {
            FromItem::Collection { expr, as_var, .. } => {
                let var = as_var
                    .clone()
                    .or_else(|| expr.derived_alias().map(str::to_string))
                    .ok_or(ReferenceError::Unsupported("FROM item without alias"))?;
                items.push((expr.clone(), var));
            }
            _ => return Err(ReferenceError::Unsupported("joins / UNPIVOT")),
        }
    }
    match &block.select {
        SelectClause::Select { .. } | SelectClause::SelectValue { .. } => {}
        SelectClause::Pivot { .. } => {
            return Err(ReferenceError::Unsupported("PIVOT"));
        }
    }

    // Reuse the engine's expression machinery by lowering tiny one-clause
    // queries. A FROM item expression is lowered in the scope of the
    // variables to its left (left-correlation).
    let helper = Helper { catalog, config };
    let mut out = Vec::new();
    helper.loop_from(block, &items, 0, &Env::new(), &mut out)?;
    Ok(Value::Bag(out))
}

struct Helper<'a> {
    catalog: &'a Catalog,
    config: EvalConfig,
}

impl Helper<'_> {
    /// Pseudocode 1's nested loops, one recursion level per FROM item.
    fn loop_from(
        &self,
        block: &sqlpp_syntax::ast::QueryBlock,
        items: &[(sqlpp_syntax::ast::Expr, String)],
        depth: usize,
        env: &Env,
        out: &mut Vec<Value>,
    ) -> Result<(), ReferenceError> {
        if depth == items.len() {
            // WHERE, then output.
            if let Some(w) = &block.where_clause {
                let keep = self
                    .eval_expr(w, items, depth, env)
                    .map_err(ReferenceError::Eval)?;
                if keep != Value::Bool(true) {
                    return Ok(());
                }
            }
            let value = match &block.select {
                SelectClause::SelectValue { expr, .. } => self
                    .eval_expr(expr, items, depth, env)
                    .map_err(ReferenceError::Eval)?,
                SelectClause::Select {
                    items: sel_items, ..
                } => {
                    let mut t = sqlpp_value::Tuple::new();
                    for (i, item) in sel_items.iter().enumerate() {
                        let sqlpp_syntax::ast::SelectItem::Expr { expr, alias } = item else {
                            return Err(ReferenceError::Unsupported("wildcards"));
                        };
                        let name = alias
                            .clone()
                            .or_else(|| expr.derived_alias().map(str::to_string))
                            .unwrap_or_else(|| format!("_{}", i + 1));
                        let v = self
                            .eval_expr(expr, items, depth, env)
                            .map_err(ReferenceError::Eval)?;
                        t.insert(name, v);
                    }
                    Value::Tuple(t)
                }
                SelectClause::Pivot { .. } => unreachable!("checked"),
            };
            out.push(value);
            return Ok(());
        }
        let (src_expr, var) = &items[depth];
        let source = self
            .eval_expr(src_expr, items, depth, env)
            .map_err(ReferenceError::Eval)?;
        // "for each VALUE v ∈ source do …"
        let elements: Vec<Value> = match source {
            Value::Bag(v) | Value::Array(v) => v,
            Value::Missing => Vec::new(),
            other => vec![other],
        };
        for element in elements {
            let inner = env.bind(var.clone(), element);
            self.loop_from(block, items, depth + 1, &inner, out)?;
        }
        Ok(())
    }

    /// Evaluates one surface expression in the current environment by
    /// lowering it with the in-scope variables visible.
    fn eval_expr(
        &self,
        expr: &sqlpp_syntax::ast::Expr,
        items: &[(sqlpp_syntax::ast::Expr, String)],
        depth: usize,
        env: &Env,
    ) -> Result<Value, EvalError> {
        use sqlpp_syntax::ast::{QueryBlock, SelectClause as SC, SetQuantifier};
        // Build `SELECT VALUE <expr>` with no FROM, lowered in a scope
        // where the first `depth` variables are declared, then evaluate
        // its projection expression directly.
        let mut scope = sqlpp_plan::Scope::new();
        scope.push();
        for (_, var) in &items[..depth] {
            scope.add(var.clone());
        }
        let mut block = QueryBlock::with_select(SC::SelectValue {
            quantifier: SetQuantifier::All,
            expr: expr.clone(),
        });
        block.placement = sqlpp_syntax::ast::SelectPlacement::Leading;
        let q = Query {
            ctes: Vec::new(),
            body: SetExpr::Block(Box::new(block)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        };
        // lower_query starts its own scope; we need ours — use the
        // lower-level entry through a wrapping trick: declare the
        // variables via LET-less FROM is intrusive, so instead lower the
        // whole expression with variables bound in the environment and
        // rely on Global's dynamic fallback… — no: cleanest is to lower
        // with a custom scope through `lower_with_scope`.
        let core = sqlpp_plan::lower::lower_with_scope(&q, &PlanConfig::default(), &mut scope)
            .map_err(|e| EvalError::Type(e.to_string()))?;
        let ev = Evaluator::new(self.catalog, self.config.clone());
        match core.op {
            sqlpp_plan::CoreOp::Project { expr, .. } => ev.expr(&expr, env),
            other => Err(EvalError::Type(format!("unexpected lowering {other:?}"))),
        }
    }
}
