//! `CAST(expr AS type)` — explicit conversions over the scalar types.
//!
//! Absent values pass through (`CAST(NULL AS INT)` is NULL, likewise
//! MISSING); a failed conversion is a dynamic type error, which the
//! evaluator maps to MISSING or an error per the typing mode (§IV).

use sqlpp_value::{Decimal, Value};

/// Normalized cast targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CastTarget {
    Int,
    Float,
    Decimal,
    String,
    Bool,
}

impl CastTarget {
    /// Parses a (upper-cased) SQL type name.
    pub fn parse(name: &str) -> Option<CastTarget> {
        match name {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => Some(CastTarget::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Some(CastTarget::Float),
            "DECIMAL" | "NUMERIC" => Some(CastTarget::Decimal),
            "STRING" | "VARCHAR" | "CHAR" | "TEXT" => Some(CastTarget::String),
            "BOOLEAN" | "BOOL" => Some(CastTarget::Bool),
            _ => None,
        }
    }
}

/// Attempts the conversion; `None` signals a dynamic type error.
pub fn cast(v: &Value, target: CastTarget) -> Option<Value> {
    if v.is_absent() {
        return Some(v.clone());
    }
    match target {
        CastTarget::Int => match v {
            Value::Int(_) => Some(v.clone()),
            Value::Decimal(d) => d.trunc_to_i64().map(Value::Int),
            Value::Float(f) => {
                if f.is_finite() && f.abs() < i64::MAX as f64 {
                    Some(Value::Int(f.trunc() as i64))
                } else {
                    None
                }
            }
            Value::Str(s) => s.trim().parse::<i64>().ok().map(Value::Int),
            Value::Bool(b) => Some(Value::Int(i64::from(*b))),
            _ => None,
        },
        CastTarget::Float => match v {
            Value::Float(_) => Some(v.clone()),
            Value::Int(i) => Some(Value::Float(*i as f64)),
            Value::Decimal(d) => Some(Value::Float(d.to_f64())),
            Value::Str(s) => s.trim().parse::<f64>().ok().map(Value::Float),
            Value::Bool(b) => Some(Value::Float(f64::from(u8::from(*b)))),
            _ => None,
        },
        CastTarget::Decimal => match v {
            Value::Decimal(_) => Some(v.clone()),
            Value::Int(i) => Some(Value::Decimal(Decimal::from_i64(*i))),
            Value::Float(f) => Decimal::from_f64(*f).map(Value::Decimal),
            Value::Str(s) => s.trim().parse::<Decimal>().ok().map(Value::Decimal),
            _ => None,
        },
        CastTarget::String => match v {
            Value::Str(_) => Some(v.clone()),
            Value::Int(_) | Value::Float(_) | Value::Decimal(_) | Value::Bool(_) => {
                Some(Value::Str(v.to_string()))
            }
            _ => None,
        },
        CastTarget::Bool => match v {
            Value::Bool(_) => Some(v.clone()),
            Value::Int(i) => Some(Value::Bool(*i != 0)),
            Value::Str(s) => match s.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Some(Value::Bool(true)),
                "false" | "f" | "0" => Some(Value::Bool(false)),
                _ => None,
            },
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_values_pass_through() {
        assert_eq!(cast(&Value::Null, CastTarget::Int), Some(Value::Null));
        assert_eq!(
            cast(&Value::Missing, CastTarget::String),
            Some(Value::Missing)
        );
    }

    #[test]
    fn numeric_casts_truncate() {
        assert_eq!(
            cast(&Value::Decimal("42.9".parse().unwrap()), CastTarget::Int),
            Some(Value::Int(42))
        );
        assert_eq!(
            cast(&Value::Float(-1.7), CastTarget::Int),
            Some(Value::Int(-1))
        );
        assert_eq!(
            cast(&Value::Str(" 17 ".into()), CastTarget::Int),
            Some(Value::Int(17))
        );
        assert_eq!(cast(&Value::Str("abc".into()), CastTarget::Int), None);
        assert_eq!(cast(&Value::Float(f64::NAN), CastTarget::Int), None);
    }

    #[test]
    fn string_casts_render_scalars() {
        assert_eq!(
            cast(&Value::Int(5), CastTarget::String),
            Some(Value::Str("5".into()))
        );
        assert_eq!(
            cast(&Value::Bool(true), CastTarget::String),
            Some(Value::Str("true".into()))
        );
        assert_eq!(cast(&Value::Array(vec![]), CastTarget::String), None);
    }

    #[test]
    fn bool_casts() {
        assert_eq!(
            cast(&Value::Str("TRUE".into()), CastTarget::Bool),
            Some(Value::Bool(true))
        );
        assert_eq!(
            cast(&Value::Int(0), CastTarget::Bool),
            Some(Value::Bool(false))
        );
        assert_eq!(cast(&Value::Str("yes".into()), CastTarget::Bool), None);
    }

    #[test]
    fn target_parsing() {
        assert_eq!(CastTarget::parse("BIGINT"), Some(CastTarget::Int));
        assert_eq!(CastTarget::parse("VARCHAR"), Some(CastTarget::String));
        assert_eq!(CastTarget::parse("GEOMETRY"), None);
    }
}
