//! The scalar function registry.
//!
//! Dispatch rule (§IV-B case 3): "whenever a function or operator has a
//! MISSING input, it returns a MISSING result", and likewise NULL inputs
//! yield NULL — applied uniformly by [`call`] *before* a function body
//! runs. The documented exception: in SQL-compatibility mode, a function
//! that maps NULL to a non-null result treats MISSING like NULL — which is
//! why `COALESCE(MISSING, 2)` is 2 there (§IV-B). `COALESCE` and `NULLIF`
//! therefore opt out of the uniform propagation and handle absence
//! themselves.

use sqlpp_value::cmp::sql_eq;
use sqlpp_value::{Tuple, Value};

use crate::arith::{num_binop, NumOp};
use crate::error::EvalError;

/// Outcome of a function body: a value, or a dynamic type error message
/// (mapped to MISSING or an error by the caller, per typing mode).
pub type FuncResult = Result<Value, String>;

/// True when the registry knows `name` (used for nicer unknown-function
/// errors at call sites).
pub fn is_known(name: &str) -> bool {
    matches!(
        name,
        "LOWER"
            | "UPPER"
            | "CHAR_LENGTH"
            | "CHARACTER_LENGTH"
            | "LENGTH"
            | "SUBSTRING"
            | "TRIM"
            | "LTRIM"
            | "RTRIM"
            | "POSITION"
            | "REPLACE"
            | "CONTAINS"
            | "STARTS_WITH"
            | "ENDS_WITH"
            | "SPLIT"
            | "CONCAT"
            | "ABS"
            | "CEIL"
            | "CEILING"
            | "FLOOR"
            | "ROUND"
            | "SQRT"
            | "POWER"
            | "POW"
            | "MOD"
            | "SIGN"
            | "COALESCE"
            | "NULLIF"
            | "TYPEOF"
            | "CARDINALITY"
            | "ARRAY_LENGTH"
            | "TO_STRING"
            | "OBJECT_NAMES"
            | "OBJECT_VALUES"
            | "OBJECT_LENGTH"
            | "ARRAY_CONCAT"
            | "ARRAY_CONTAINS"
            | "ARRAY_DISTINCT"
            | "ARRAY_REVERSE"
            | "TO_ARRAY"
            | "TO_BAG"
            | "$MERGE"
    )
}

/// Functions that see absent arguments rather than having them propagated.
fn handles_absence(name: &str) -> bool {
    matches!(name, "COALESCE" | "NULLIF" | "TYPEOF" | "$MERGE")
}

/// Invokes a registry function with the uniform absent-propagation rule.
/// `compat` enables the SQL-compatibility COALESCE exception.
pub fn call(name: &str, args: &[Value], compat: bool) -> Result<FuncResult, EvalError> {
    if !is_known(name) {
        return Err(EvalError::UnknownFunction(name.to_string()));
    }
    if !handles_absence(name) {
        if args.iter().any(Value::is_missing) {
            return Ok(Ok(Value::Missing));
        }
        if args.iter().any(Value::is_null) {
            return Ok(Ok(Value::Null));
        }
    }
    Ok(dispatch(name, args, compat))
}

fn str_arg<'a>(name: &str, args: &'a [Value], i: usize) -> Result<&'a str, String> {
    match args.get(i) {
        Some(Value::Str(s)) => Ok(s),
        Some(other) => Err(format!(
            "{name}: argument {} must be a string, found {}",
            i + 1,
            other.kind().name()
        )),
        None => Err(format!("{name}: missing argument {}", i + 1)),
    }
}

fn int_arg(name: &str, args: &[Value], i: usize) -> Result<i64, String> {
    match args.get(i) {
        Some(Value::Int(v)) => Ok(*v),
        Some(other) => Err(format!(
            "{name}: argument {} must be an integer, found {}",
            i + 1,
            other.kind().name()
        )),
        None => Err(format!("{name}: missing argument {}", i + 1)),
    }
}

fn f64_arg(name: &str, args: &[Value], i: usize) -> Result<f64, String> {
    args.get(i)
        .and_then(Value::as_f64_lossy)
        .ok_or_else(|| format!("{name}: argument {} must be numeric", i + 1))
}

fn arity(name: &str, args: &[Value], want: std::ops::RangeInclusive<usize>) -> Result<(), String> {
    if want.contains(&args.len()) {
        Ok(())
    } else {
        Err(format!(
            "{name}: expected {:?} arguments, got {}",
            want,
            args.len()
        ))
    }
}

fn dispatch(name: &str, args: &[Value], compat: bool) -> FuncResult {
    match name {
        // ---------------- strings ----------------
        "LOWER" => {
            arity(name, args, 1..=1)?;
            Ok(Value::Str(str_arg(name, args, 0)?.to_lowercase()))
        }
        "UPPER" => {
            arity(name, args, 1..=1)?;
            Ok(Value::Str(str_arg(name, args, 0)?.to_uppercase()))
        }
        "CHAR_LENGTH" | "CHARACTER_LENGTH" | "LENGTH" => {
            arity(name, args, 1..=1)?;
            Ok(Value::Int(str_arg(name, args, 0)?.chars().count() as i64))
        }
        "SUBSTRING" => {
            arity(name, args, 2..=3)?;
            let s = str_arg(name, args, 0)?;
            let start = int_arg(name, args, 1)?;
            let chars: Vec<char> = s.chars().collect();
            // SQL 1-based; out-of-range clamps.
            let begin = (start.max(1) - 1) as usize;
            let len = if args.len() == 3 {
                let l = int_arg(name, args, 2)?;
                if l < 0 {
                    return Err(format!("{name}: negative length"));
                }
                // A start before 1 eats into the length, per SQL.
                (l + start.min(1) - 1).max(0) as usize
            } else {
                usize::MAX
            };
            Ok(Value::Str(
                chars.iter().skip(begin).take(len).collect::<String>(),
            ))
        }
        "TRIM" => {
            arity(name, args, 1..=1)?;
            Ok(Value::Str(str_arg(name, args, 0)?.trim().to_string()))
        }
        "LTRIM" => {
            arity(name, args, 1..=1)?;
            Ok(Value::Str(str_arg(name, args, 0)?.trim_start().to_string()))
        }
        "RTRIM" => {
            arity(name, args, 1..=1)?;
            Ok(Value::Str(str_arg(name, args, 0)?.trim_end().to_string()))
        }
        "POSITION" => {
            arity(name, args, 2..=2)?;
            let sub = str_arg(name, args, 0)?;
            let s = str_arg(name, args, 1)?;
            // 1-based character position; 0 when absent.
            match s.find(sub) {
                Some(byte_pos) => Ok(Value::Int(s[..byte_pos].chars().count() as i64 + 1)),
                None => Ok(Value::Int(0)),
            }
        }
        "REPLACE" => {
            arity(name, args, 3..=3)?;
            let s = str_arg(name, args, 0)?;
            let from = str_arg(name, args, 1)?;
            let to = str_arg(name, args, 2)?;
            if from.is_empty() {
                return Ok(Value::Str(s.to_string()));
            }
            Ok(Value::Str(s.replace(from, to)))
        }
        "CONTAINS" => {
            arity(name, args, 2..=2)?;
            Ok(Value::Bool(
                str_arg(name, args, 0)?.contains(str_arg(name, args, 1)?),
            ))
        }
        "STARTS_WITH" => {
            arity(name, args, 2..=2)?;
            Ok(Value::Bool(
                str_arg(name, args, 0)?.starts_with(str_arg(name, args, 1)?),
            ))
        }
        "ENDS_WITH" => {
            arity(name, args, 2..=2)?;
            Ok(Value::Bool(
                str_arg(name, args, 0)?.ends_with(str_arg(name, args, 1)?),
            ))
        }
        "SPLIT" => {
            arity(name, args, 2..=2)?;
            let s = str_arg(name, args, 0)?;
            let sep = str_arg(name, args, 1)?;
            if sep.is_empty() {
                return Err(format!("{name}: empty separator"));
            }
            Ok(Value::Array(
                s.split(sep).map(|p| Value::Str(p.to_string())).collect(),
            ))
        }
        "CONCAT" => {
            let mut out = String::new();
            for (i, a) in args.iter().enumerate() {
                match a {
                    Value::Str(s) => out.push_str(s),
                    other => {
                        return Err(format!(
                            "CONCAT: argument {} must be a string, found {}",
                            i + 1,
                            other.kind().name()
                        ));
                    }
                }
            }
            Ok(Value::Str(out))
        }
        // ---------------- numerics ----------------
        "ABS" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Int(i) => i
                    .checked_abs()
                    .map(Value::Int)
                    .ok_or_else(|| "ABS: overflow".to_string()),
                Value::Decimal(d) => Ok(Value::Decimal(d.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(format!("ABS: not a number: {}", other.kind().name())),
            }
        }
        "CEIL" | "CEILING" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Int(_) => Ok(args[0].clone()),
                Value::Decimal(d) => Ok(Value::Decimal(d.ceil())),
                Value::Float(f) => Ok(Value::Float(f.ceil())),
                other => Err(format!("{name}: not a number: {}", other.kind().name())),
            }
        }
        "FLOOR" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Int(_) => Ok(args[0].clone()),
                Value::Decimal(d) => Ok(Value::Decimal(d.floor())),
                Value::Float(f) => Ok(Value::Float(f.floor())),
                other => Err(format!("FLOOR: not a number: {}", other.kind().name())),
            }
        }
        "ROUND" => {
            arity(name, args, 1..=2)?;
            let digits = if args.len() == 2 {
                int_arg(name, args, 1)?
            } else {
                0
            };
            if digits < 0 {
                return Err("ROUND: negative digit count".to_string());
            }
            match &args[0] {
                Value::Int(_) => Ok(args[0].clone()),
                Value::Decimal(d) => Ok(Value::Decimal(d.round_dp(digits as u32))),
                Value::Float(f) => {
                    let m = 10f64.powi(digits as i32);
                    Ok(Value::Float((f * m).round() / m))
                }
                other => Err(format!("ROUND: not a number: {}", other.kind().name())),
            }
        }
        "SQRT" => {
            arity(name, args, 1..=1)?;
            let x = f64_arg(name, args, 0)?;
            if x < 0.0 {
                return Err("SQRT: negative input".to_string());
            }
            Ok(Value::Float(x.sqrt()))
        }
        "POWER" | "POW" => {
            arity(name, args, 2..=2)?;
            Ok(Value::Float(
                f64_arg(name, args, 0)?.powf(f64_arg(name, args, 1)?),
            ))
        }
        "MOD" => {
            arity(name, args, 2..=2)?;
            num_binop(NumOp::Rem, &args[0], &args[1]).map_err(|e| format!("MOD: {e:?}"))
        }
        "SIGN" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.signum())),
                Value::Decimal(d) => Ok(Value::Int(if d.is_zero() {
                    0
                } else if d.is_negative() {
                    -1
                } else {
                    1
                })),
                Value::Float(f) => Ok(Value::Int(if *f == 0.0 {
                    0
                } else if *f < 0.0 {
                    -1
                } else {
                    1
                })),
                other => Err(format!("SIGN: not a number: {}", other.kind().name())),
            }
        }
        // ---------------- absence-aware ----------------
        "COALESCE" => {
            // SQL: first non-NULL argument. In compat mode MISSING is
            // treated like NULL (the paper's §IV-B exception); in pure
            // composability mode a MISSING argument propagates.
            for a in args {
                if a.is_missing() {
                    if compat {
                        continue;
                    }
                    return Ok(Value::Missing);
                }
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        }
        "NULLIF" => {
            arity(name, args, 2..=2)?;
            if args[0].is_absent() || args[1].is_absent() {
                return Ok(args[0].clone());
            }
            match sql_eq(&args[0], &args[1]) {
                Value::Bool(true) => Ok(Value::Null),
                _ => Ok(args[0].clone()),
            }
        }
        "TYPEOF" => {
            arity(name, args, 1..=1)?;
            Ok(Value::Str(args[0].kind().name().to_string()))
        }
        // ---------------- collections / misc ----------------
        "CARDINALITY" | "ARRAY_LENGTH" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Array(items) | Value::Bag(items) => Ok(Value::Int(items.len() as i64)),
                other => Err(format!("{name}: not a collection: {}", other.kind().name())),
            }
        }
        "TO_STRING" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Str(_) => Ok(args[0].clone()),
                v if v.is_scalar() => Ok(Value::Str(v.to_string())),
                other => Err(format!("TO_STRING: not a scalar: {}", other.kind().name())),
            }
        }
        // ---------------- tuple/array reflection ----------------
        // The §VI names⇄data theme as plain functions: tuples expose
        // their attribute names and values as data.
        "OBJECT_NAMES" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Tuple(t) => Ok(Value::Array(
                    t.names().map(|n| Value::Str(n.to_string())).collect(),
                )),
                other => Err(format!(
                    "OBJECT_NAMES: not a tuple: {}",
                    other.kind().name()
                )),
            }
        }
        "OBJECT_VALUES" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Tuple(t) => Ok(Value::Array(t.iter().map(|(_, v)| v.clone()).collect())),
                other => Err(format!(
                    "OBJECT_VALUES: not a tuple: {}",
                    other.kind().name()
                )),
            }
        }
        "OBJECT_LENGTH" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Tuple(t) => Ok(Value::Int(t.len() as i64)),
                other => Err(format!(
                    "OBJECT_LENGTH: not a tuple: {}",
                    other.kind().name()
                )),
            }
        }
        "ARRAY_CONCAT" => {
            let mut out = Vec::new();
            for (i, a) in args.iter().enumerate() {
                match a {
                    Value::Array(items) => out.extend(items.iter().cloned()),
                    other => {
                        return Err(format!(
                            "ARRAY_CONCAT: argument {} is not an array: {}",
                            i + 1,
                            other.kind().name()
                        ));
                    }
                }
            }
            Ok(Value::Array(out))
        }
        "ARRAY_CONTAINS" => {
            arity(name, args, 2..=2)?;
            match &args[0] {
                Value::Array(items) | Value::Bag(items) => Ok(Value::Bool(
                    items.iter().any(|v| sqlpp_value::cmp::deep_eq(v, &args[1])),
                )),
                other => Err(format!(
                    "ARRAY_CONTAINS: not a collection: {}",
                    other.kind().name()
                )),
            }
        }
        "ARRAY_DISTINCT" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Array(items) => {
                    let mut out: Vec<Value> = Vec::with_capacity(items.len());
                    for v in items {
                        if !out.iter().any(|s| sqlpp_value::cmp::deep_eq(s, v)) {
                            out.push(v.clone());
                        }
                    }
                    Ok(Value::Array(out))
                }
                other => Err(format!(
                    "ARRAY_DISTINCT: not an array: {}",
                    other.kind().name()
                )),
            }
        }
        "ARRAY_REVERSE" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Array(items) => Ok(Value::Array(items.iter().rev().cloned().collect())),
                other => Err(format!(
                    "ARRAY_REVERSE: not an array: {}",
                    other.kind().name()
                )),
            }
        }
        // Collection kind conversions: arrays impose an (arbitrary but
        // stable) order on bags; bags forget array order.
        "TO_ARRAY" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Array(_) => Ok(args[0].clone()),
                Value::Bag(items) => Ok(Value::Array(items.clone())),
                other => Ok(Value::Array(vec![other.clone()])),
            }
        }
        "TO_BAG" => {
            arity(name, args, 1..=1)?;
            match &args[0] {
                Value::Bag(_) => Ok(args[0].clone()),
                Value::Array(items) => Ok(Value::Bag(items.clone())),
                other => Ok(Value::Bag(vec![other.clone()])),
            }
        }
        // SELECT * support: arguments alternate (marker, value); a marker
        // starting with '*' spreads a tuple value (or binds the rest of
        // the marker as the attribute name for non-tuples).
        "$MERGE" => {
            let mut t = Tuple::new();
            let mut i = 0;
            while i + 1 < args.len() {
                let marker = match &args[i] {
                    Value::Str(s) => s.as_str(),
                    _ => return Err("$MERGE: malformed marker".to_string()),
                };
                let value = &args[i + 1];
                if let Some(var_name) = marker.strip_prefix('*') {
                    match value {
                        Value::Tuple(inner) => {
                            for (n, v) in inner.iter() {
                                t.insert(n, v.clone());
                            }
                        }
                        Value::Missing => {}
                        other => t.insert(var_name, other.clone()),
                    }
                } else {
                    t.insert(marker, value.clone());
                }
                i += 2;
            }
            Ok(Value::Tuple(t))
        }
        _ => unreachable!("is_known checked"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(name: &str, args: &[Value]) -> Value {
        call(name, args, true).unwrap().unwrap()
    }

    #[test]
    fn uniform_absent_propagation() {
        assert_eq!(
            ok("LOWER", &[Value::Missing]),
            Value::Missing,
            "MISSING in, MISSING out"
        );
        assert_eq!(ok("LOWER", &[Value::Null]), Value::Null);
        assert_eq!(
            ok("SUBSTRING", &[Value::Str("ab".into()), Value::Missing]),
            Value::Missing
        );
    }

    #[test]
    fn coalesce_follows_the_papers_exception() {
        // §IV-B: COALESCE(MISSING, 2) = 2 in SQL-compat mode…
        let args = [Value::Missing, Value::Int(2)];
        assert_eq!(
            call("COALESCE", &args, true).unwrap().unwrap(),
            Value::Int(2)
        );
        // …but propagates MISSING in pure composability mode.
        assert_eq!(
            call("COALESCE", &args, false).unwrap().unwrap(),
            Value::Missing
        );
        assert_eq!(ok("COALESCE", &[Value::Null, Value::Int(3)]), Value::Int(3));
        assert_eq!(ok("COALESCE", &[Value::Null, Value::Null]), Value::Null);
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            ok("LOWER", &["OLAP Security".into()]),
            "olap security".into()
        );
        assert_eq!(ok("UPPER", &["abc".into()]), "ABC".into());
        assert_eq!(ok("CHAR_LENGTH", &["héllo".into()]), Value::Int(5));
        assert_eq!(
            ok(
                "SUBSTRING",
                &["abcdef".into(), Value::Int(2), Value::Int(3)]
            ),
            "bcd".into()
        );
        assert_eq!(
            ok("SUBSTRING", &["abcdef".into(), Value::Int(4)]),
            "def".into()
        );
        assert_eq!(ok("TRIM", &["  x  ".into()]), "x".into());
        assert_eq!(
            ok("POSITION", &["Sec".into(), "OLTP Security".into()]),
            Value::Int(6)
        );
        assert_eq!(ok("POSITION", &["zz".into(), "abc".into()]), Value::Int(0));
        assert_eq!(
            ok("REPLACE", &["a-b-c".into(), "-".into(), "+".into()]),
            "a+b+c".into()
        );
        assert_eq!(
            ok("CONCAT", &["a".into(), "b".into(), "c".into()]),
            "abc".into()
        );
        assert_eq!(
            ok("SPLIT", &["a,b".into(), ",".into()]),
            Value::Array(vec!["a".into(), "b".into()])
        );
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(ok("ABS", &[Value::Int(-5)]), Value::Int(5));
        assert_eq!(
            ok("CEIL", &[Value::Decimal("1.2".parse().unwrap())]),
            Value::Decimal("2".parse().unwrap())
        );
        assert_eq!(ok("FLOOR", &[Value::Float(1.8)]), Value::Float(1.0));
        assert_eq!(
            ok(
                "ROUND",
                &[Value::Decimal("2.45".parse().unwrap()), Value::Int(1)]
            ),
            Value::Decimal("2.5".parse().unwrap())
        );
        assert_eq!(ok("SQRT", &[Value::Int(9)]), Value::Float(3.0));
        assert_eq!(ok("MOD", &[Value::Int(7), Value::Int(3)]), Value::Int(1));
        assert_eq!(ok("SIGN", &[Value::Int(-3)]), Value::Int(-1));
    }

    #[test]
    fn type_errors_are_reported_as_messages() {
        let r = call("LOWER", &[Value::Int(1)], true).unwrap();
        assert!(r.is_err());
        let r = call("SQRT", &[Value::Int(-1)], true).unwrap();
        assert!(r.is_err());
    }

    #[test]
    fn unknown_function_is_a_hard_error() {
        assert!(matches!(
            call("FROBNICATE", &[], true),
            Err(EvalError::UnknownFunction(_))
        ));
    }

    #[test]
    fn nullif() {
        assert_eq!(ok("NULLIF", &[Value::Int(1), Value::Int(1)]), Value::Null);
        assert_eq!(ok("NULLIF", &[Value::Int(1), Value::Int(2)]), Value::Int(1));
        assert_eq!(ok("NULLIF", &[Value::Null, Value::Int(2)]), Value::Null);
        assert_eq!(
            ok("NULLIF", &[Value::Missing, Value::Int(2)]),
            Value::Missing
        );
    }

    #[test]
    fn typeof_sees_absent_values() {
        assert_eq!(ok("TYPEOF", &[Value::Missing]), "missing".into());
        assert_eq!(ok("TYPEOF", &[Value::Null]), "null".into());
        assert_eq!(ok("TYPEOF", &[Value::Int(1)]), "integer".into());
    }

    #[test]
    fn object_reflection() {
        use sqlpp_value::tuple;
        let t = Value::Tuple(tuple! {"a" => 1i64, "b" => "x"});
        assert_eq!(
            ok("OBJECT_NAMES", std::slice::from_ref(&t)),
            Value::Array(vec!["a".into(), "b".into()])
        );
        assert_eq!(
            ok("OBJECT_VALUES", std::slice::from_ref(&t)),
            Value::Array(vec![Value::Int(1), "x".into()])
        );
        assert_eq!(ok("OBJECT_LENGTH", &[t]), Value::Int(2));
        assert!(call("OBJECT_NAMES", &[Value::Int(1)], true)
            .unwrap()
            .is_err());
    }

    #[test]
    fn array_helpers() {
        use sqlpp_value::array;
        assert_eq!(
            ok("ARRAY_CONCAT", &[array![1i64], array![2i64, 3i64]]),
            array![1i64, 2i64, 3i64]
        );
        assert_eq!(
            ok("ARRAY_CONTAINS", &[array![1i64, 2i64], Value::Float(2.0)]),
            Value::Bool(true)
        );
        assert_eq!(
            ok("ARRAY_DISTINCT", &[array![1i64, 1i64, 2i64]]),
            array![1i64, 2i64]
        );
        assert_eq!(
            ok("ARRAY_REVERSE", &[array![1i64, 2i64]]),
            array![2i64, 1i64]
        );
        assert_eq!(ok("TO_ARRAY", &[sqlpp_value::bag![1i64]]), array![1i64]);
        assert_eq!(ok("TO_BAG", &[array![1i64]]), sqlpp_value::bag![1i64]);
        assert_eq!(ok("TO_ARRAY", &[Value::Int(5)]), array![5i64]);
    }

    #[test]
    fn merge_spreads_tuples_and_names_scalars() {
        use sqlpp_value::tuple;
        let t = Value::Tuple(tuple! {"a" => 1i64});
        let merged = ok(
            "$MERGE",
            &[
                Value::Str("*e".into()),
                t,
                Value::Str("*s".into()),
                Value::Int(5),
                Value::Str("x".into()),
                Value::Int(9),
            ],
        );
        let mt = merged.as_tuple().unwrap();
        assert_eq!(mt.get("a"), Some(&Value::Int(1)));
        assert_eq!(mt.get("s"), Some(&Value::Int(5)));
        assert_eq!(mt.get("x"), Some(&Value::Int(9)));
    }
}
