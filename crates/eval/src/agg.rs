//! The composable `COLL_*` aggregate functions (§V-C): plain functions
//! from a collection to a value — "for each of the traditional aggregate
//! functions of SQL, SQL++ Core provides a fully composable function that
//! takes a collection as input and returns the aggregated value of that
//! collection."
//!
//! SQL alignment: absent elements (NULL and MISSING) are ignored, like
//! SQL aggregates ignore NULLs. Over zero countable elements, `COLL_COUNT`
//! is 0 and the others are NULL. Sums/averages stay exact while inputs
//! are Int/Decimal and widen to float only when a float appears.

use sqlpp_plan::AggFunc;
use sqlpp_value::cmp::{deep_eq, total_cmp};
use sqlpp_value::{Decimal, Value};

use crate::arith::{num_binop, NumOp};

/// An aggregation failure (wrong element type and similar).
#[derive(Debug, Clone, PartialEq)]
pub enum AggError {
    /// An element had a type the aggregate cannot process.
    BadElement {
        /// Which aggregate.
        func: AggFunc,
        /// Offending element's type name.
        kind: &'static str,
    },
    /// Arithmetic failure while accumulating.
    Arithmetic(String),
}

/// Removes structural duplicates (for `DISTINCT` aggregates), preserving
/// first occurrences.
pub fn distinct_elements(items: &[Value]) -> Vec<Value> {
    let mut out: Vec<Value> = Vec::with_capacity(items.len());
    for item in items {
        if !out.iter().any(|seen| deep_eq(seen, item)) {
            out.push(item.clone());
        }
    }
    out
}

/// Applies a composable aggregate to the elements of a collection.
pub fn apply(func: AggFunc, items: &[Value]) -> Result<Value, AggError> {
    let present: Vec<&Value> = items.iter().filter(|v| !v.is_absent()).collect();
    match func {
        AggFunc::Count => Ok(Value::Int(present.len() as i64)),
        AggFunc::Sum => {
            if present.is_empty() {
                return Ok(Value::Null);
            }
            sum(&present, func)
        }
        AggFunc::Avg => {
            if present.is_empty() {
                return Ok(Value::Null);
            }
            let total = sum(&present, func)?;
            let n = present.len() as i64;
            // AVG divides exactly: ints go through decimal so 1,2 → 1.5.
            let total = match total {
                Value::Int(i) => Value::Decimal(Decimal::from_i64(i)),
                other => other,
            };
            num_binop(NumOp::Div, &total, &Value::Int(n))
                .map_err(|e| AggError::Arithmetic(format!("{e:?}")))
        }
        AggFunc::Min | AggFunc::Max => {
            if present.is_empty() {
                return Ok(Value::Null);
            }
            // MIN/MAX over comparable scalars; heterogeneous collections
            // fall back to the total order (documented extension — SQL
            // would have rejected the data statically).
            let mut best = present[0];
            for v in &present[1..] {
                let take = match func {
                    AggFunc::Min => total_cmp(v, best) == std::cmp::Ordering::Less,
                    _ => total_cmp(v, best) == std::cmp::Ordering::Greater,
                };
                if take {
                    best = v;
                }
            }
            Ok((*best).clone())
        }
        AggFunc::Every => {
            if present.is_empty() {
                return Ok(Value::Null);
            }
            let mut all = true;
            for v in &present {
                match v {
                    Value::Bool(b) => all &= b,
                    other => {
                        return Err(AggError::BadElement {
                            func,
                            kind: other.kind().name(),
                        });
                    }
                }
            }
            Ok(Value::Bool(all))
        }
        AggFunc::Some => {
            if present.is_empty() {
                return Ok(Value::Null);
            }
            let mut any = false;
            for v in &present {
                match v {
                    Value::Bool(b) => any |= b,
                    other => {
                        return Err(AggError::BadElement {
                            func,
                            kind: other.kind().name(),
                        });
                    }
                }
            }
            Ok(Value::Bool(any))
        }
    }
}

fn sum(present: &[&Value], func: AggFunc) -> Result<Value, AggError> {
    let mut acc = Value::Int(0);
    for v in present {
        if !v.is_number() {
            return Err(AggError::BadElement {
                func,
                kind: v.kind().name(),
            });
        }
        acc = num_binop(NumOp::Add, &acc, v).map_err(|e| AggError::Arithmetic(format!("{e:?}")))?;
    }
    Ok(acc)
}

/// An incremental accumulator used by the pipelined aggregation fast path
/// (the engine optimization §V-C licenses: "a SQL++ engine is free to
/// optimize, e.g., by using pipelineable aggregation operations").
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    count: i64,
    sum: Value,
    best: Option<Value>,
    bool_acc: Option<bool>,
    failed: Option<AggError>,
}

impl Accumulator {
    /// A fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        Accumulator {
            func,
            count: 0,
            sum: Value::Int(0),
            best: None,
            bool_acc: None,
            failed: None,
        }
    }

    /// Feeds one element.
    pub fn push(&mut self, v: &Value) {
        if self.failed.is_some() || v.is_absent() {
            return;
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                // Int running sum skips the numeric-tower dispatch;
                // overflow reports exactly what the tower would.
                if let (Value::Int(s), Value::Int(x)) = (&self.sum, v) {
                    match s.checked_add(*x) {
                        Some(n) => self.sum = Value::Int(n),
                        None => {
                            self.failed = Some(AggError::Arithmetic(format!(
                                "{:?}",
                                crate::arith::NumError::Overflow
                            )))
                        }
                    }
                    return;
                }
                if !v.is_number() {
                    self.failed = Some(AggError::BadElement {
                        func: self.func,
                        kind: v.kind().name(),
                    });
                    return;
                }
                match num_binop(NumOp::Add, &self.sum, v) {
                    Ok(s) => self.sum = s,
                    Err(e) => self.failed = Some(AggError::Arithmetic(format!("{e:?}"))),
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let take = match &self.best {
                    None => true,
                    Some(b) => {
                        let o = total_cmp(v, b);
                        match self.func {
                            AggFunc::Min => o == std::cmp::Ordering::Less,
                            _ => o == std::cmp::Ordering::Greater,
                        }
                    }
                };
                if take {
                    self.best = Some(v.clone());
                }
            }
            AggFunc::Every | AggFunc::Some => match v {
                Value::Bool(b) => {
                    let acc = self.bool_acc.unwrap_or(self.func == AggFunc::Every);
                    self.bool_acc = Some(match self.func {
                        AggFunc::Every => acc && *b,
                        _ => acc || *b,
                    });
                }
                other => {
                    self.failed = Some(AggError::BadElement {
                        func: self.func,
                        kind: other.kind().name(),
                    });
                }
            },
        }
    }

    /// Produces the aggregate value.
    pub fn finish(self) -> Result<Value, AggError> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        match self.func {
            AggFunc::Count => Ok(Value::Int(self.count)),
            _ if self.count == 0 => Ok(Value::Null),
            AggFunc::Sum => Ok(self.sum),
            AggFunc::Avg => {
                let total = match self.sum {
                    Value::Int(i) => Value::Decimal(Decimal::from_i64(i)),
                    other => other,
                };
                num_binop(NumOp::Div, &total, &Value::Int(self.count))
                    .map_err(|e| AggError::Arithmetic(format!("{e:?}")))
            }
            AggFunc::Min | AggFunc::Max => Ok(self.best.expect("count > 0")),
            AggFunc::Every | AggFunc::Some => Ok(Value::Bool(self.bool_acc.expect("count > 0"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(items: &[i64]) -> Vec<Value> {
        items.iter().map(|i| Value::Int(*i)).collect()
    }

    #[test]
    fn basic_aggregates() {
        let items = vals(&[1, 2, 3, 4]);
        assert_eq!(apply(AggFunc::Count, &items), Ok(Value::Int(4)));
        assert_eq!(apply(AggFunc::Sum, &items), Ok(Value::Int(10)));
        assert_eq!(
            apply(AggFunc::Avg, &items),
            Ok(Value::Decimal("2.5".parse().unwrap()))
        );
        assert_eq!(apply(AggFunc::Min, &items), Ok(Value::Int(1)));
        assert_eq!(apply(AggFunc::Max, &items), Ok(Value::Int(4)));
    }

    #[test]
    fn absent_elements_are_ignored_like_sql_nulls() {
        let items = vec![Value::Int(2), Value::Null, Value::Missing, Value::Int(4)];
        assert_eq!(apply(AggFunc::Count, &items), Ok(Value::Int(2)));
        assert_eq!(apply(AggFunc::Sum, &items), Ok(Value::Int(6)));
        assert_eq!(
            apply(AggFunc::Avg, &items),
            Ok(Value::Decimal("3".parse().unwrap()))
        );
    }

    #[test]
    fn empty_input_yields_null_except_count() {
        let empty: Vec<Value> = vec![];
        let nulls_only = vec![Value::Null];
        for items in [&empty, &nulls_only] {
            assert_eq!(apply(AggFunc::Count, items), Ok(Value::Int(0)));
            assert_eq!(apply(AggFunc::Sum, items), Ok(Value::Null));
            assert_eq!(apply(AggFunc::Avg, items), Ok(Value::Null));
            assert_eq!(apply(AggFunc::Min, items), Ok(Value::Null));
            assert_eq!(apply(AggFunc::Every, items), Ok(Value::Null));
        }
    }

    #[test]
    fn avg_is_exact_decimal_for_ints() {
        assert_eq!(
            apply(AggFunc::Avg, &vals(&[1, 2])),
            Ok(Value::Decimal("1.5".parse().unwrap()))
        );
    }

    #[test]
    fn float_inputs_widen() {
        let items = vec![Value::Int(1), Value::Float(2.0)];
        assert_eq!(apply(AggFunc::Sum, &items), Ok(Value::Float(3.0)));
    }

    #[test]
    fn bad_elements_error() {
        let items = vec![Value::Int(1), Value::Str("x".into())];
        assert!(matches!(
            apply(AggFunc::Sum, &items),
            Err(AggError::BadElement { .. })
        ));
        assert!(matches!(
            apply(AggFunc::Every, &vals(&[1])),
            Err(AggError::BadElement { .. })
        ));
    }

    #[test]
    fn every_and_some() {
        let t = Value::Bool(true);
        let f = Value::Bool(false);
        assert_eq!(
            apply(AggFunc::Every, &[t.clone(), t.clone()]),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            apply(AggFunc::Every, &[t.clone(), f.clone()]),
            Ok(Value::Bool(false))
        );
        assert_eq!(
            apply(AggFunc::Some, &[f.clone(), t.clone()]),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            apply(AggFunc::Some, &[f.clone(), f]),
            Ok(Value::Bool(false))
        );
    }

    #[test]
    fn distinct_elements_dedupe_structurally() {
        let items = vec![Value::Int(1), Value::Float(1.0), Value::Int(2)];
        // 1 and 1.0 are structurally equal numbers.
        assert_eq!(distinct_elements(&items).len(), 2);
    }

    #[test]
    fn accumulator_matches_batch_apply() {
        let items = vec![
            Value::Int(3),
            Value::Null,
            Value::Decimal("0.5".parse().unwrap()),
            Value::Int(-1),
        ];
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let mut acc = Accumulator::new(func);
            for v in &items {
                acc.push(v);
            }
            assert_eq!(acc.finish(), apply(func, &items), "{func:?}");
        }
    }
}
