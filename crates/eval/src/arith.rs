//! The numeric tower: Int ⊂ Decimal ⊂ Float promotion for arithmetic.
//!
//! * Int ∘ Int stays Int (checked; `/` truncates as in SQL);
//! * anything with a Decimal (and no Float) is exact decimal arithmetic;
//! * anything with a Float is `f64` arithmetic.
//!
//! Absent-value propagation and the permissive/strict dichotomy are the
//! caller's job (`expr.rs`); this module only ever sees present numbers
//! and reports structured failures.

use sqlpp_value::{Decimal, Value};

/// A failed numeric operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumError {
    /// An operand was not a number (dynamic type error, §IV-B case 2).
    NotANumber(&'static str),
    /// Integer/decimal overflow.
    Overflow,
    /// Division or modulo by zero.
    DivisionByZero,
}

/// Which arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum NumOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

enum Tower {
    Int(i64),
    Dec(Decimal),
    Flt(f64),
}

fn classify(v: &Value) -> Result<Tower, NumError> {
    match v {
        Value::Int(i) => Ok(Tower::Int(*i)),
        Value::Decimal(d) => Ok(Tower::Dec(*d)),
        Value::Float(f) => Ok(Tower::Flt(*f)),
        other => Err(NumError::NotANumber(other.kind().name())),
    }
}

/// Applies a binary arithmetic operator with tower promotion.
pub fn num_binop(op: NumOp, a: &Value, b: &Value) -> Result<Value, NumError> {
    use Tower::*;
    let (ta, tb) = (classify(a)?, classify(b)?);
    Ok(match (ta, tb) {
        (Int(x), Int(y)) => int_op(op, x, y)?,
        (Flt(x), Flt(y)) => float_op(op, x, y)?,
        (Flt(x), Int(y)) => float_op(op, x, y as f64)?,
        (Int(x), Flt(y)) => float_op(op, x as f64, y)?,
        (Flt(x), Dec(y)) => float_op(op, x, y.to_f64())?,
        (Dec(x), Flt(y)) => float_op(op, x.to_f64(), y)?,
        (Dec(x), Dec(y)) => dec_op(op, x, y)?,
        (Dec(x), Int(y)) => dec_op(op, x, Decimal::from_i64(y))?,
        (Int(x), Dec(y)) => dec_op(op, Decimal::from_i64(x), y)?,
    })
}

fn int_op(op: NumOp, x: i64, y: i64) -> Result<Value, NumError> {
    let r = match op {
        NumOp::Add => x.checked_add(y),
        NumOp::Sub => x.checked_sub(y),
        NumOp::Mul => x.checked_mul(y),
        NumOp::Div => {
            if y == 0 {
                return Err(NumError::DivisionByZero);
            }
            x.checked_div(y)
        }
        NumOp::Rem => {
            if y == 0 {
                return Err(NumError::DivisionByZero);
            }
            x.checked_rem(y)
        }
    };
    r.map(Value::Int).ok_or(NumError::Overflow)
}

fn float_op(op: NumOp, x: f64, y: f64) -> Result<Value, NumError> {
    // IEEE semantics: division by zero yields ±inf/NaN rather than an
    // error, matching SQL double behavior in permissive engines.
    Ok(Value::Float(match op {
        NumOp::Add => x + y,
        NumOp::Sub => x - y,
        NumOp::Mul => x * y,
        NumOp::Div => x / y,
        NumOp::Rem => x % y,
    }))
}

fn dec_op(op: NumOp, x: Decimal, y: Decimal) -> Result<Value, NumError> {
    let r = match op {
        NumOp::Add => x.checked_add(y),
        NumOp::Sub => x.checked_sub(y),
        NumOp::Mul => x.checked_mul(y),
        NumOp::Div => x.checked_div(y),
        NumOp::Rem => x.checked_rem(y),
    };
    r.map(Value::Decimal).map_err(|e| match e {
        sqlpp_value::DecimalError::DivisionByZero => NumError::DivisionByZero,
        _ => NumError::Overflow,
    })
}

/// Unary negation with the same tower rules.
pub fn num_neg(v: &Value) -> Result<Value, NumError> {
    match v {
        Value::Int(i) => i.checked_neg().map(Value::Int).ok_or(NumError::Overflow),
        Value::Decimal(d) => Ok(Value::Decimal(-*d)),
        Value::Float(f) => Ok(Value::Float(-f)),
        other => Err(NumError::NotANumber(other.kind().name())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Value {
        Value::Decimal(s.parse().unwrap())
    }

    #[test]
    fn int_arithmetic_stays_int_and_truncates_division() {
        assert_eq!(
            num_binop(NumOp::Add, &Value::Int(2), &Value::Int(3)),
            Ok(Value::Int(5))
        );
        assert_eq!(
            num_binop(NumOp::Div, &Value::Int(7), &Value::Int(2)),
            Ok(Value::Int(3))
        );
        assert_eq!(
            num_binop(NumOp::Div, &Value::Int(-7), &Value::Int(2)),
            Ok(Value::Int(-3))
        );
        assert_eq!(
            num_binop(NumOp::Rem, &Value::Int(7), &Value::Int(2)),
            Ok(Value::Int(1))
        );
    }

    #[test]
    fn decimal_promotion() {
        assert_eq!(
            num_binop(NumOp::Add, &Value::Int(1), &d("0.5")),
            Ok(d("1.5"))
        );
        assert_eq!(num_binop(NumOp::Mul, &d("1.5"), &d("2")), Ok(d("3")));
        assert_eq!(
            num_binop(NumOp::Div, &d("1"), &Value::Int(4)),
            Ok(d("0.25"))
        );
    }

    #[test]
    fn float_promotion_dominates() {
        assert_eq!(
            num_binop(NumOp::Add, &Value::Float(0.5), &Value::Int(1)),
            Ok(Value::Float(1.5))
        );
        assert_eq!(
            num_binop(NumOp::Mul, &d("2"), &Value::Float(0.5)),
            Ok(Value::Float(1.0))
        );
    }

    #[test]
    fn errors() {
        assert_eq!(
            num_binop(NumOp::Div, &Value::Int(1), &Value::Int(0)),
            Err(NumError::DivisionByZero)
        );
        assert_eq!(
            num_binop(NumOp::Add, &Value::Int(i64::MAX), &Value::Int(1)),
            Err(NumError::Overflow)
        );
        assert_eq!(
            num_binop(NumOp::Add, &Value::Int(1), &Value::Str("x".into())),
            Err(NumError::NotANumber("string"))
        );
    }

    #[test]
    fn float_division_by_zero_is_ieee() {
        assert_eq!(
            num_binop(NumOp::Div, &Value::Float(1.0), &Value::Float(0.0)),
            Ok(Value::Float(f64::INFINITY))
        );
    }

    #[test]
    fn negation() {
        assert_eq!(num_neg(&Value::Int(5)), Ok(Value::Int(-5)));
        assert_eq!(num_neg(&d("1.5")), Ok(d("-1.5")));
        assert_eq!(num_neg(&Value::Int(i64::MIN)), Err(NumError::Overflow));
        assert!(num_neg(&Value::Bool(true)).is_err());
    }
}
