//! Per-query resource governance: memory budgets, deadlines, cooperative
//! cancellation, nesting-depth limits, and fault-injection hooks.
//!
//! A production SQL++ engine serves many users; one hostile query must not
//! OOM the process or hold a core forever. The [`ResourceGovernor`] is the
//! enforcement point: it is constructed per query from the session's
//! [`Limits`], threaded through the evaluator, and consulted at exactly
//! the choke points the streaming executor already funnels everything
//! through —
//!
//! * **memory**: every pipeline-breaker row is admitted through
//!   [`ResourceGovernor::admit`] before it is buffered (the same
//!   `TrackedBuffer`/`MatGauge` choke point that feeds
//!   `peak_live_bindings`), so a budget overrun surfaces as a structured
//!   [`EvalError::ResourceExhausted`] *before* the row is held, and the
//!   live count provably never exceeds the budget;
//! * **time**: the `BindingStream` pull loop and the join inner loops call
//!   [`ResourceGovernor::tick`], which is a counter bump on most calls and
//!   only inspects the clock/token every [`TICK_INTERVAL`] ticks — the
//!   same "gate the whole feature behind one discriminant check" pattern
//!   `collect_stats` uses, so an ungoverned query pays nothing;
//! * **depth**: operator evaluation nests through
//!   [`ResourceGovernor::enter_nested`], converting pathological
//!   subquery/plan nesting into a typed error instead of a stack overflow;
//! * **faults**: an optional [`FaultInjector`] piggybacks on the same
//!   hooks, letting `sqlpp-testkit`'s chaos suites fail "the k-th buffer
//!   admission / catalog read / operator eval" deterministically and prove
//!   the engine degrades gracefully.
//!
//! Interior mutability (`Cell`) mirrors `StatsCollector`: the evaluator
//! threads `&self` and is single-threaded by construction. The one
//! cross-thread piece is [`CancelToken`], an `Arc<AtomicBool>` a client
//! can trip from another thread.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::EvalError;
use crate::stats::ExecStats;

/// How many [`ResourceGovernor::tick`]s pass between real deadline/token
/// inspections. Power of two so the amortization is a mask, not a
/// division. The very first tick checks, so a zero deadline trips
/// deterministically on the first pull.
pub const TICK_INTERVAL: u64 = 64;

/// Default cap on operator-evaluation nesting depth (subqueries inside
/// subqueries, deeply nested plans). Far above anything a sane query
/// produces, far below where the stack actually overflows.
pub const DEFAULT_EVAL_DEPTH: u32 = 128;

/// Per-query resource limits, carried by `EvalConfig` (and the engine's
/// `SessionConfig`). The default is fully unlimited — the governor then
/// costs one branch at each choke point and nothing else.
#[derive(Debug, Clone, Default)]
pub struct Limits {
    /// Memory budget, measured in *live materialized rows* across all
    /// pipeline-breaker buffers (the unit `peak_live_bindings` reports —
    /// the number a spill policy would act on). `None` = unlimited.
    pub memory_rows: Option<u64>,
    /// Wall-clock deadline for one query, measured from evaluator
    /// construction. `None` = no deadline.
    pub time: Option<Duration>,
    /// Cooperative cancellation token; trip it from any thread and the
    /// query aborts at its next amortized check.
    pub cancel: Option<CancelToken>,
    /// Operator-evaluation nesting depth cap. `None` = the
    /// [`DEFAULT_EVAL_DEPTH`] guardrail (it exists to prevent stack
    /// overflow, so it is never fully off).
    pub eval_depth: Option<u32>,
    /// Memory budget measured in *estimated live bytes* across all
    /// pipeline-breaker buffers. The row gauge above stays the admission
    /// fast path; the byte gauge is consulted by spill-aware breakers,
    /// whose serialized sizes are known (or cheaply estimated) at
    /// admission time. `None` = unlimited.
    pub memory_bytes: Option<u64>,
    /// Cap on total bytes a query may write to spill files. `None` =
    /// unlimited (spilling is still off unless the session enables it).
    pub spill_bytes: Option<u64>,
}

impl Limits {
    /// No limits at all — the default.
    pub fn none() -> Self {
        Limits::default()
    }

    /// True when nothing is limited and no token is attached (the
    /// governor's fast paths collapse to single branches).
    pub fn is_unlimited(&self) -> bool {
        self.memory_rows.is_none()
            && self.time.is_none()
            && self.cancel.is_none()
            && self.eval_depth.is_none()
            && self.memory_bytes.is_none()
            && self.spill_bytes.is_none()
    }

    /// Sets the memory budget (live materialized rows).
    pub fn with_memory_rows(mut self, rows: u64) -> Self {
        self.memory_rows = Some(rows);
        self
    }

    /// Sets the per-query wall-clock deadline.
    pub fn with_time(mut self, deadline: Duration) -> Self {
        self.time = Some(deadline);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the eval nesting-depth cap.
    pub fn with_eval_depth(mut self, depth: u32) -> Self {
        self.eval_depth = Some(depth);
        self
    }

    /// Sets the memory budget (estimated live buffer bytes).
    pub fn with_memory_bytes(mut self, bytes: u64) -> Self {
        self.memory_bytes = Some(bytes);
        self
    }

    /// Sets the spill-write cap (total bytes written to spill files).
    pub fn with_spill_bytes(mut self, bytes: u64) -> Self {
        self.spill_bytes = Some(bytes);
        self
    }
}

/// A cooperative cancellation token: cheap to clone, safe to trip from
/// another thread. The evaluator polls it at the same amortized cadence
/// as the deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-tripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The points where a fault can be injected — each one a real governor
/// hook, so injected failures travel exactly the paths genuine resource
/// failures would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A row being admitted into a pipeline-breaker buffer.
    BufferAdmission,
    /// A catalog name being resolved to a value.
    CatalogRead,
    /// An operator evaluation beginning.
    OperatorEval,
    /// A record being written to a spill file.
    SpillWrite,
    /// A record being read back from a spill file.
    SpillRead,
    /// A spill temp file being created.
    TempFileCreate,
    /// A record about to be appended to the write-ahead log.
    WalAppend,
    /// The write-ahead log about to be fsynced after an append.
    WalFsync,
    /// A checkpoint snapshot temp file about to be written.
    SnapshotWrite,
    /// A checkpoint snapshot about to be renamed into place.
    SnapshotRename,
    /// A snapshot or WAL file about to be read during recovery.
    RecoveryRead,
}

impl FaultSite {
    /// All sites, for chaos suites that sweep them.
    pub const ALL: [FaultSite; 11] = [
        FaultSite::BufferAdmission,
        FaultSite::CatalogRead,
        FaultSite::OperatorEval,
        FaultSite::SpillWrite,
        FaultSite::SpillRead,
        FaultSite::TempFileCreate,
        FaultSite::WalAppend,
        FaultSite::WalFsync,
        FaultSite::SnapshotWrite,
        FaultSite::SnapshotRename,
        FaultSite::RecoveryRead,
    ];

    /// The durability-layer subset — the sites the crash-recovery
    /// harness sweeps.
    pub const DURABILITY: [FaultSite; 5] = [
        FaultSite::WalAppend,
        FaultSite::WalFsync,
        FaultSite::SnapshotWrite,
        FaultSite::SnapshotRename,
        FaultSite::RecoveryRead,
    ];

    /// Stable string name (the key `testkit::fault::FaultPlan` uses).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::BufferAdmission => "buffer",
            FaultSite::CatalogRead => "catalog",
            FaultSite::OperatorEval => "operator",
            FaultSite::SpillWrite => "spill-write",
            FaultSite::SpillRead => "spill-read",
            FaultSite::TempFileCreate => "temp-file",
            FaultSite::WalAppend => "wal-append",
            FaultSite::WalFsync => "wal-fsync",
            FaultSite::SnapshotWrite => "snapshot-write",
            FaultSite::SnapshotRename => "snapshot-rename",
            FaultSite::RecoveryRead => "recovery-read",
        }
    }
}

/// A fault-injection hook: called at each [`FaultSite`] visit; returning
/// `Some(error)` makes that visit fail with the given typed error.
/// Deterministic plans (see `sqlpp-testkit`'s `fault` module) live behind
/// this closure, keeping the evaluator free of any test-only state.
#[derive(Clone)]
pub struct FaultInjector(Arc<dyn Fn(FaultSite) -> Option<EvalError> + Send + Sync>);

impl FaultInjector {
    /// Wraps a decision function.
    pub fn new(f: impl Fn(FaultSite) -> Option<EvalError> + Send + Sync + 'static) -> Self {
        FaultInjector(Arc::new(f))
    }

    /// Consults the hook for one site visit.
    pub fn check(&self, site: FaultSite) -> Option<EvalError> {
        (self.0)(site)
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FaultInjector(..)")
    }
}

/// The per-query enforcement object (one per evaluator; the deadline
/// clock starts when it is built). All counters are `Cell`s — the
/// evaluator threads `&self` single-threadedly, like `StatsCollector`.
#[derive(Debug)]
pub struct ResourceGovernor {
    mem_limit: Option<u64>,
    mem_bytes_limit: Option<u64>,
    spill_limit: Option<u64>,
    deadline: Option<Instant>,
    time_limit: Option<Duration>,
    cancel: Option<CancelToken>,
    depth_limit: u32,
    fault: Option<FaultInjector>,
    /// Rows currently admitted across all live buffers.
    live: Cell<u64>,
    /// High-water mark of `live`.
    peak: Cell<u64>,
    /// Estimated bytes currently admitted across all live buffers.
    live_bytes: Cell<u64>,
    /// High-water mark of `live_bytes`.
    peak_bytes: Cell<u64>,
    /// Admissions refused over budget.
    denials: Cell<u64>,
    /// Real deadline/token inspections performed (not amortized skips).
    checks: Cell<u64>,
    ticks: Cell<u64>,
    depth: Cell<u32>,
    /// Spill files (partitions + sorted runs) created.
    spill_partitions: Cell<u64>,
    /// Total bytes written to spill files.
    spill_written: Cell<u64>,
    /// K-way merge passes performed by external sorts — every pass
    /// including the final one, so any spilled sort counts at least 1.
    merge_passes: Cell<u64>,
}

impl ResourceGovernor {
    /// Builds the governor for one query run. The deadline, if any, is
    /// `now + limits.time`.
    pub fn new(limits: &Limits, fault: Option<FaultInjector>) -> Self {
        ResourceGovernor {
            mem_limit: limits.memory_rows,
            mem_bytes_limit: limits.memory_bytes,
            spill_limit: limits.spill_bytes,
            deadline: limits.time.map(|d| Instant::now() + d),
            time_limit: limits.time,
            cancel: limits.cancel.clone(),
            depth_limit: limits.eval_depth.unwrap_or(DEFAULT_EVAL_DEPTH),
            fault,
            live: Cell::new(0),
            peak: Cell::new(0),
            live_bytes: Cell::new(0),
            peak_bytes: Cell::new(0),
            denials: Cell::new(0),
            checks: Cell::new(0),
            ticks: Cell::new(0),
            depth: Cell::new(0),
            spill_partitions: Cell::new(0),
            spill_written: Cell::new(0),
            merge_passes: Cell::new(0),
        }
    }

    /// True when buffer admissions must consult the governor (a memory
    /// budget is set, or a fault hook wants the admission site).
    pub fn tracks_memory(&self) -> bool {
        self.mem_limit.is_some() || self.mem_bytes_limit.is_some() || self.fault.is_some()
    }

    /// True when pull loops must tick the governor (a deadline or token
    /// is attached).
    pub fn watches_time(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// True when a fault hook is attached.
    pub fn injects_faults(&self) -> bool {
        self.fault.is_some()
    }

    /// `Some(self)` iff buffers need a governor — the shape the stream
    /// layer's gauges consume, mirroring `Option<&StatsCollector>`.
    pub fn as_memory_guard(&self) -> Option<&Self> {
        if self.tracks_memory() {
            Some(self)
        } else {
            None
        }
    }

    /// `Some(self)` iff pull loops need ticking.
    pub fn as_watcher(&self) -> Option<&Self> {
        if self.watches_time() {
            Some(self)
        } else {
            None
        }
    }

    /// Admits `n` rows into the live-buffer account, or refuses with
    /// [`EvalError::ResourceExhausted`] *without* counting them — so the
    /// live total (and therefore `peak_live_bindings`) never exceeds the
    /// budget. Also the [`FaultSite::BufferAdmission`] injection point.
    pub fn admit(&self, n: u64) -> Result<(), EvalError> {
        if let Some(inj) = &self.fault {
            if let Some(e) = inj.check(FaultSite::BufferAdmission) {
                return Err(e);
            }
        }
        let live = self.live.get() + n;
        if let Some(limit) = self.mem_limit {
            if live > limit {
                self.denials.set(self.denials.get() + 1);
                return Err(EvalError::ResourceExhausted {
                    resource: "memory budget (rows)",
                    limit,
                    used: live,
                });
            }
        }
        self.live.set(live);
        if live > self.peak.get() {
            self.peak.set(live);
        }
        Ok(())
    }

    /// Releases `n` admitted rows (buffer dropped / handed off).
    pub fn release(&self, n: u64) {
        self.live.set(self.live.get().saturating_sub(n));
    }

    /// Admits `n` estimated bytes into the live-byte account, or refuses
    /// with [`EvalError::ResourceExhausted`] *without* counting them —
    /// the byte-denominated twin of [`ResourceGovernor::admit`]. Spill-
    /// aware breakers call this alongside the row gauge, so budgets can
    /// be expressed in either unit. No fault site here: admissions
    /// already pass through [`FaultSite::BufferAdmission`] via the row
    /// path.
    pub fn admit_bytes(&self, n: u64) -> Result<(), EvalError> {
        let live = self.live_bytes.get() + n;
        if let Some(limit) = self.mem_bytes_limit {
            if live > limit {
                self.denials.set(self.denials.get() + 1);
                return Err(EvalError::ResourceExhausted {
                    resource: "memory budget (bytes)",
                    limit,
                    used: live,
                });
            }
        }
        self.live_bytes.set(live);
        if live > self.peak_bytes.get() {
            self.peak_bytes.set(live);
        }
        Ok(())
    }

    /// Releases `n` admitted bytes.
    pub fn release_bytes(&self, n: u64) {
        self.live_bytes.set(self.live_bytes.get().saturating_sub(n));
    }

    /// Accounts `n` bytes written to a spill file against the spill-write
    /// cap. Refused writes are not counted (the file is abandoned by the
    /// failing operator), so retried queries start from a clean slate.
    pub fn add_spill_write(&self, n: u64) -> Result<(), EvalError> {
        let written = self.spill_written.get() + n;
        if let Some(limit) = self.spill_limit {
            if written > limit {
                self.denials.set(self.denials.get() + 1);
                return Err(EvalError::ResourceExhausted {
                    resource: "spill budget (bytes)",
                    limit,
                    used: written,
                });
            }
        }
        self.spill_written.set(written);
        Ok(())
    }

    /// Counts `n` spill files (partitions or sorted runs) created.
    pub fn add_spill_partitions(&self, n: u64) {
        self.spill_partitions.set(self.spill_partitions.get() + n);
    }

    /// Counts one k-way merge pass (intermediate or final).
    pub fn add_merge_pass(&self) {
        self.merge_passes.set(self.merge_passes.get() + 1);
    }

    /// One amortized pull-loop step: bumps a counter, and every
    /// [`TICK_INTERVAL`] ticks (including the very first) performs a real
    /// deadline/token check.
    pub fn tick(&self) -> Result<(), EvalError> {
        let t = self.ticks.get();
        self.ticks.set(t + 1);
        if t & (TICK_INTERVAL - 1) == 0 {
            self.check_now()
        } else {
            Ok(())
        }
    }

    /// The batch-sized equivalent of [`ResourceGovernor::tick`]: advances
    /// the amortized counter as if the pull loop had ticked once per
    /// [`TICK_INTERVAL`] of the `rows` just produced, so a whole batch
    /// costs at most a handful of counter bumps while deadline/token
    /// responsiveness stays bounded by the batch size (a 1024-row batch
    /// can never advance the clock-observation point by more than 64
    /// rows' worth of ticks).
    pub fn tick_rows(&self, rows: u64) -> Result<(), EvalError> {
        for _ in 0..rows / TICK_INTERVAL {
            self.tick()?;
        }
        Ok(())
    }

    /// An unamortized deadline/token check.
    pub fn check_now(&self) -> Result<(), EvalError> {
        self.checks.set(self.checks.get() + 1);
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(EvalError::Cancelled {
                    reason: "cancellation requested".into(),
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(EvalError::Cancelled {
                    reason: format!(
                        "deadline of {:?} exceeded",
                        self.time_limit.unwrap_or_default()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Enters one level of operator-evaluation nesting; callers must pair
    /// with [`ResourceGovernor::exit_nested`] on *every* path (the
    /// evaluator wraps the recursive entry point, so the pairing lives in
    /// exactly one place).
    pub fn enter_nested(&self) -> Result<(), EvalError> {
        let d = self.depth.get() + 1;
        if d > self.depth_limit {
            return Err(EvalError::ResourceExhausted {
                resource: "eval nesting depth",
                limit: self.depth_limit as u64,
                used: d as u64,
            });
        }
        self.depth.set(d);
        Ok(())
    }

    /// Leaves one nesting level.
    pub fn exit_nested(&self) {
        self.depth.set(self.depth.get().saturating_sub(1));
    }

    /// Fault-injection hook for non-admission sites (catalog reads,
    /// operator evals). One `Option` branch when no injector is attached.
    pub fn fault_at(&self, site: FaultSite) -> Result<(), EvalError> {
        if let Some(inj) = &self.fault {
            if let Some(e) = inj.check(site) {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Rows currently admitted (test visibility).
    pub fn live_rows(&self) -> u64 {
        self.live.get()
    }

    /// High-water mark of admitted rows.
    pub fn peak_rows(&self) -> u64 {
        self.peak.get()
    }

    /// Admissions refused over budget.
    pub fn budget_denials(&self) -> u64 {
        self.denials.get()
    }

    /// Real deadline/token inspections performed.
    pub fn cancel_checks(&self) -> u64 {
        self.checks.get()
    }

    /// Estimated bytes currently admitted.
    pub fn live_buffer_bytes(&self) -> u64 {
        self.live_bytes.get()
    }

    /// High-water mark of admitted bytes.
    pub fn peak_buffer_bytes(&self) -> u64 {
        self.peak_bytes.get()
    }

    /// Spill files created so far.
    pub fn spill_partitions(&self) -> u64 {
        self.spill_partitions.get()
    }

    /// Bytes written to spill files so far.
    pub fn spill_bytes_written(&self) -> u64 {
        self.spill_written.get()
    }

    /// K-way merge passes performed so far (the final pass included).
    pub fn merge_passes(&self) -> u64 {
        self.merge_passes.get()
    }

    /// Copies the governor's counters (and the limits in effect) into a
    /// stats snapshot, so `EXPLAIN ANALYZE` and benches can report them.
    pub fn fill_stats(&self, stats: &mut ExecStats) {
        stats.budget_denials = self.denials.get();
        stats.cancel_checks = self.checks.get();
        stats.peak_budget_used = self.peak.get();
        stats.mem_budget = self.mem_limit;
        stats.time_budget_ms = self.time_limit.map(|d| d.as_millis() as u64);
        stats.mem_bytes_budget = self.mem_bytes_limit;
        stats.peak_budget_bytes = self.peak_bytes.get();
        stats.spill_partitions = self.spill_partitions.get();
        stats.spill_bytes_written = self.spill_written.get();
        stats.merge_passes = self.merge_passes.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_admits_and_ticks_freely() {
        let g = ResourceGovernor::new(&Limits::none(), None);
        assert!(!g.tracks_memory() && !g.watches_time());
        assert!(g.as_memory_guard().is_none() && g.as_watcher().is_none());
        for _ in 0..1000 {
            g.admit(10).unwrap();
            g.tick().unwrap();
        }
        assert_eq!(g.budget_denials(), 0);
        assert_eq!(g.peak_rows(), 10_000);
    }

    #[test]
    fn budget_refuses_before_counting_so_peak_stays_bounded() {
        let g = ResourceGovernor::new(&Limits::none().with_memory_rows(5), None);
        assert!(g.tracks_memory());
        g.admit(3).unwrap();
        g.admit(2).unwrap();
        let err = g.admit(1).unwrap_err();
        match err {
            EvalError::ResourceExhausted {
                resource,
                limit,
                used,
            } => {
                assert_eq!(resource, "memory budget (rows)");
                assert_eq!((limit, used), (5, 6));
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(g.live_rows(), 5, "refused rows must not be counted");
        assert_eq!(g.peak_rows(), 5);
        assert_eq!(g.budget_denials(), 1);
        // Releasing makes room again: the engine stays usable.
        g.release(5);
        g.admit(4).unwrap();
        assert_eq!(g.live_rows(), 4);
    }

    #[test]
    fn zero_deadline_trips_on_the_first_tick() {
        let g = ResourceGovernor::new(&Limits::none().with_time(Duration::ZERO), None);
        assert!(g.watches_time());
        let err = g.tick().unwrap_err();
        assert!(
            matches!(err, EvalError::Cancelled { .. }),
            "wrong error: {err:?}"
        );
        assert_eq!(g.cancel_checks(), 1);
    }

    #[test]
    fn ticks_are_amortized_between_real_checks() {
        let token = CancelToken::new();
        let g = ResourceGovernor::new(&Limits::none().with_cancel(token.clone()), None);
        g.tick().unwrap(); // tick 0: real check
        token.cancel();
        for t in 1..TICK_INTERVAL {
            assert!(g.tick().is_ok(), "tick {t} should be amortized away");
        }
        assert!(g.tick().is_err(), "the next interval boundary must check");
        assert_eq!(g.cancel_checks(), 2);
    }

    #[test]
    fn depth_limit_is_enforced_and_rebalances() {
        let g = ResourceGovernor::new(&Limits::none().with_eval_depth(2), None);
        g.enter_nested().unwrap();
        g.enter_nested().unwrap();
        assert!(matches!(
            g.enter_nested(),
            Err(EvalError::ResourceExhausted {
                resource: "eval nesting depth",
                ..
            })
        ));
        g.exit_nested();
        g.enter_nested().unwrap();
        g.exit_nested();
        g.exit_nested();
    }

    #[test]
    fn fault_injector_fires_at_its_site_only() {
        let inj = FaultInjector::new(|site| {
            (site == FaultSite::CatalogRead)
                .then(|| EvalError::Resource("injected fault at catalog".into()))
        });
        let g = ResourceGovernor::new(&Limits::none(), Some(inj));
        assert!(g.tracks_memory(), "fault hook activates admission checks");
        assert!(g.admit(1).is_ok());
        assert!(g.fault_at(FaultSite::OperatorEval).is_ok());
        assert!(g.fault_at(FaultSite::CatalogRead).is_err());
    }

    #[test]
    fn site_names_are_stable() {
        let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "buffer",
                "catalog",
                "operator",
                "spill-write",
                "spill-read",
                "temp-file",
                "wal-append",
                "wal-fsync",
                "snapshot-write",
                "snapshot-rename",
                "recovery-read"
            ]
        );
        for site in FaultSite::DURABILITY {
            assert!(FaultSite::ALL.contains(&site));
        }
    }

    #[test]
    fn byte_budget_refuses_before_counting_like_the_row_budget() {
        let g = ResourceGovernor::new(&Limits::none().with_memory_bytes(100), None);
        assert!(g.tracks_memory());
        g.admit_bytes(60).unwrap();
        g.admit_bytes(40).unwrap();
        let err = g.admit_bytes(1).unwrap_err();
        match err {
            EvalError::ResourceExhausted {
                resource,
                limit,
                used,
            } => {
                assert_eq!(resource, "memory budget (bytes)");
                assert_eq!((limit, used), (100, 101));
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(g.live_buffer_bytes(), 100, "refused bytes are not counted");
        assert_eq!(g.peak_buffer_bytes(), 100);
        g.release_bytes(50);
        g.admit_bytes(25).unwrap();
        assert_eq!(g.live_buffer_bytes(), 75);
    }

    #[test]
    fn spill_write_cap_is_cumulative_and_refuses_over_limit() {
        let g = ResourceGovernor::new(&Limits::none().with_spill_bytes(64), None);
        g.add_spill_write(40).unwrap();
        g.add_spill_write(24).unwrap();
        let err = g.add_spill_write(1).unwrap_err();
        assert!(
            matches!(
                err,
                EvalError::ResourceExhausted {
                    resource: "spill budget (bytes)",
                    ..
                }
            ),
            "wrong error: {err:?}"
        );
        assert_eq!(g.spill_bytes_written(), 64, "refused writes not counted");
        g.add_spill_partitions(3);
        g.add_merge_pass();
        assert_eq!((g.spill_partitions(), g.merge_passes()), (3, 1));
    }
}
