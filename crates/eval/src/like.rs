//! The SQL `LIKE` pattern matcher: `%` matches any sequence, `_` any
//! single character, and an optional ESCAPE character quotes either.
//! Implemented with the classic two-pointer backtracking algorithm —
//! linear in practice, and immune to the exponential blowup a naive
//! recursive matcher suffers on patterns like `%a%a%a%…`.

/// One parsed pattern element.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pat {
    /// Match exactly this character.
    Lit(char),
    /// `_`
    One,
    /// `%`
    Any,
}

/// Errors from pattern compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LikeError {
    /// The ESCAPE string was not a single character.
    BadEscape,
    /// The pattern ended immediately after an escape character.
    DanglingEscape,
}

/// Compiles and matches in one call. `escape` is the ESCAPE character, if
/// any.
pub fn like_match(text: &str, pattern: &str, escape: Option<char>) -> Result<bool, LikeError> {
    let pat = compile(pattern, escape)?;
    Ok(matches(text, &pat))
}

fn compile(pattern: &str, escape: Option<char>) -> Result<Vec<Pat>, LikeError> {
    let mut out = Vec::with_capacity(pattern.len());
    let mut chars = pattern.chars();
    while let Some(c) = chars.next() {
        if Some(c) == escape {
            match chars.next() {
                Some(next) => out.push(Pat::Lit(next)),
                None => return Err(LikeError::DanglingEscape),
            }
        } else if c == '%' {
            // Collapse runs of % (they are equivalent and the collapse
            // keeps backtracking cheap).
            if out.last() != Some(&Pat::Any) {
                out.push(Pat::Any);
            }
        } else if c == '_' {
            out.push(Pat::One);
        } else {
            out.push(Pat::Lit(c));
        }
    }
    Ok(out)
}

fn matches(text: &str, pat: &[Pat]) -> bool {
    let chars: Vec<char> = text.chars().collect();
    let (mut t, mut p) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pat index after %, text index)
    while t < chars.len() {
        if p < pat.len() {
            match pat[p] {
                Pat::Lit(c) if chars[t] == c => {
                    t += 1;
                    p += 1;
                    continue;
                }
                Pat::One => {
                    t += 1;
                    p += 1;
                    continue;
                }
                Pat::Any => {
                    star = Some((p + 1, t));
                    p += 1;
                    continue;
                }
                Pat::Lit(_) => {}
            }
        }
        // Mismatch: backtrack to the last %, consuming one more char.
        match star {
            Some((sp, st)) => {
                p = sp;
                t = st + 1;
                star = Some((sp, st + 1));
            }
            None => return false,
        }
    }
    // Remaining pattern must be all %.
    pat[p..].iter().all(|x| *x == Pat::Any)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(text: &str, pattern: &str) -> bool {
        like_match(text, pattern, None).unwrap()
    }

    #[test]
    fn paper_pattern_percent_security_percent() {
        // Listing 2's predicate.
        assert!(m("OLAP Security", "%Security%"));
        assert!(m("OLTP Security", "%Security%"));
        assert!(!m("Serverless Query", "%Security%"));
        assert!(m("Security", "%Security%"));
    }

    #[test]
    fn exact_and_underscore() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abd"));
        assert!(m("abc", "a_c"));
        assert!(!m("ac", "a_c"));
        assert!(m("chief x", "chief _"));
    }

    #[test]
    fn percent_positions() {
        assert!(m("Chief Officer", "Chief %"));
        assert!(!m("chief officer", "Chief %")); // case-sensitive
        assert!(m("", "%"));
        assert!(m("", ""));
        assert!(!m("a", ""));
        assert!(m("abc", "%"));
        assert!(m("abc", "a%"));
        assert!(m("abc", "%c"));
        assert!(m("abc", "%b%"));
    }

    #[test]
    fn escape_characters() {
        assert!(like_match("50%", "50\\%", Some('\\')).unwrap());
        assert!(!like_match("50x", "50\\%", Some('\\')).unwrap());
        assert!(like_match("a_b", "a!_b", Some('!')).unwrap());
        assert!(!like_match("axb", "a!_b", Some('!')).unwrap());
        // Escaped escape.
        assert!(like_match("a!b", "a!!b", Some('!')).unwrap());
        assert_eq!(
            like_match("x", "abc!", Some('!')),
            Err(LikeError::DanglingEscape)
        );
    }

    #[test]
    fn pathological_patterns_terminate_quickly() {
        let text = "a".repeat(2000);
        let pattern = "%a".repeat(40) + "b";
        // Must return (false) fast rather than exploding exponentially.
        assert!(!m(&text, &pattern));
    }

    #[test]
    fn unicode() {
        assert!(m("héllo", "h_llo"));
        assert!(m("日本語", "%本%"));
    }
}
