//! Out-of-core execution: spill files, external merge-sort, and Grace
//! partitioning (DESIGN.md §5.12).
//!
//! The governor (PR 5) made "budget exceeded" a refusal; this module makes
//! it a *plan B*. When a session enables spilling, every pipeline breaker
//! that takes a memory-budget refusal at its [`MatGauge`] moves part of its
//! working set to temp files — serialized with the `ion_lite` binary format
//! from `sqlpp-formats`, whose encoded length also gives the byte-
//! denominated budget its unit — and streams it back later:
//!
//! * **ORDER BY** becomes an external merge-sort: the in-memory chunk is
//!   stable-sorted and written out as a *sorted run* whenever admission is
//!   refused; [`ExternalSorter::finish`] then k-way-merges the runs (fan-in
//!   capped, extra passes counted in `merge_passes`) with a run-index
//!   tie-break that preserves exactly the stable-sort order the in-memory
//!   path produces.
//! * **GROUP BY / hash-join builds** partition Grace-style through
//!   [`GracePartitioner`]: rows are routed to one of `partitions` files by
//!   a *seeded* structural hash of their key, and each partition is later
//!   rebuilt in memory — re-partitioned recursively (new seed per depth)
//!   when a skewed partition alone exceeds the budget.
//!
//! Temp files are delete-on-drop ([`SpillFile`]), so error paths —
//! including injected faults at the three spill sites ([`FaultSite`]
//! `SpillWrite`/`SpillRead`/`TempFileCreate`) — never leak files.
//! Accounting invariant: rows admitted through a gauge are released
//! ([`MatGauge::remove`]) the moment they are written out, so *peak
//! tracked memory stays at or below the budget* even on 10×-budget inputs
//! (the B15 gate).

use std::cmp::Ordering;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use sqlpp_formats::ion_lite::{from_ion_lite, to_ion_lite};
use sqlpp_plan::CoreSortKey;
use sqlpp_value::cmp::total_cmp;
use sqlpp_value::hash::hash_value;
use sqlpp_value::Value;

use crate::error::EvalError;
use crate::govern::{FaultSite, ResourceGovernor};
use crate::stream::MatGauge;

/// Session-level spill policy: where temp files go and how aggressively
/// breakers partition. Spilling is opt-in — without a `SpillConfig` on the
/// session, a budget overrun stays a hard [`EvalError::ResourceExhausted`]
/// refusal (the PR 5 contract).
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory for spill temp files. `None` = the system temp dir.
    pub dir: Option<PathBuf>,
    /// Grace fan-out: how many partition files a spilling hash build or
    /// GROUP BY scatters into per level.
    pub partitions: usize,
    /// External-sort merge fan-in: how many sorted runs one k-way merge
    /// pass consumes.
    pub sort_fanin: usize,
    /// Maximum Grace re-partitioning depth. A partition that still
    /// exceeds the budget after this many splits (pathological key skew —
    /// e.g. every row sharing one key) surfaces the original refusal.
    pub max_recursion: u32,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            dir: None,
            partitions: 8,
            sort_fanin: 8,
            max_recursion: 4,
        }
    }
}

/// Everything a spill site needs: the session policy plus the governor
/// (fault sites, spill-write cap, spill counters).
#[derive(Clone, Copy)]
pub(crate) struct SpillCtx<'s> {
    pub(crate) config: &'s SpillConfig,
    pub(crate) govern: &'s ResourceGovernor,
}

/// Whether an error is a *memory-budget* refusal — the only error spilling
/// may absorb. Injected faults, deadline/cancellation, spill-cap and
/// nesting-depth errors all propagate unchanged, so chaos determinism and
/// the governor's other contracts survive the spill path.
pub(crate) fn is_memory_refusal(e: &EvalError) -> bool {
    matches!(
        e,
        EvalError::ResourceExhausted { resource, .. } if resource.starts_with("memory budget")
    )
}

/// Cheap recursive estimate of a value's in-memory footprint, used as the
/// unit of the byte-denominated budget. Deliberately rough (tag + inline
/// payload + recursion); the serialized `ion_lite` size at spill time is
/// the precise twin.
pub(crate) fn approx_value_bytes(v: &Value) -> u64 {
    match v {
        Value::Missing | Value::Null | Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 9,
        Value::Decimal(_) => 17,
        Value::Str(s) => 9 + s.len() as u64,
        Value::Bytes(b) => 9 + b.len() as u64,
        Value::Array(items) | Value::Bag(items) => {
            9 + items.iter().map(approx_value_bytes).sum::<u64>()
        }
        Value::Tuple(t) => {
            9 + t
                .iter()
                .map(|(k, v)| 9 + k.len() as u64 + approx_value_bytes(v))
                .sum::<u64>()
        }
    }
}

/// The ORDER BY comparator over pre-extracted key vectors: per key, absent
/// values (MISSING and NULL) obey `nulls_first` as a block; present-vs-
/// present and absent-vs-absent use the cross-type total order, reversed
/// under DESC. Shared by the in-memory sort, the bounded top-k heap, and
/// the k-way run merge — one comparator, so all three provably agree.
pub(crate) fn cmp_sort_keys(keys: &[CoreSortKey], a: &[Value], b: &[Value]) -> Ordering {
    for (i, k) in keys.iter().enumerate() {
        let (av, bv) = (&a[i], &b[i]);
        let (aa, ba) = (av.is_absent(), bv.is_absent());
        let ord = match (aa, ba) {
            (true, false) => {
                if k.nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if k.nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            _ => {
                let o = total_cmp(av, bv);
                if k.desc {
                    o.reverse()
                } else {
                    o
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Structural hash of a key tuple under a partitioning `seed`. Different
/// seeds give (practically) independent partition assignments, which is
/// what makes recursive Grace re-partitioning effective on skew that is
/// *hash* skew rather than identical-key skew.
pub(crate) fn seeded_hash(vals: &[Value], seed: u64) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;
    let mut h = DefaultHasher::new();
    h.write_u64(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(seed.wrapping_add(1)));
    for v in vals {
        hash_value(v, &mut h);
    }
    h.finish()
}

// ---------------- temp files and record framing ----------------

/// Process-wide sequence for unique spill file names.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A spill temp file, deleted on drop — every owner (writer, run, reader)
/// holds it through this guard, so no code path can leak a file.
struct SpillFile {
    path: PathBuf,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Writes length-prefixed `ion_lite` records to a fresh spill temp file.
pub(crate) struct SpillWriter {
    file: SpillFile,
    w: BufWriter<File>,
    records: u64,
}

impl SpillWriter {
    /// Creates a temp file in the configured spill directory
    /// ([`FaultSite::TempFileCreate`]) and counts it as a spill partition.
    pub(crate) fn create(ctx: &SpillCtx<'_>) -> Result<SpillWriter, EvalError> {
        ctx.govern.fault_at(FaultSite::TempFileCreate)?;
        let dir = ctx.config.dir.clone().unwrap_or_else(std::env::temp_dir);
        let seq = SPILL_SEQ.fetch_add(1, AtomicOrdering::Relaxed);
        let path = dir.join(format!("sqlpp-spill-{}-{}.bin", std::process::id(), seq));
        let f = File::create(&path)
            .map_err(|e| EvalError::Resource(format!("spill temp-file create failed: {e}")))?;
        ctx.govern.add_spill_partitions(1);
        Ok(SpillWriter {
            file: SpillFile { path },
            w: BufWriter::new(f),
            records: 0,
        })
    }

    /// Appends one record ([`FaultSite::SpillWrite`]); the encoded length
    /// plus the 4-byte prefix is charged against the spill-write cap.
    pub(crate) fn write(&mut self, ctx: &SpillCtx<'_>, record: &Value) -> Result<(), EvalError> {
        ctx.govern.fault_at(FaultSite::SpillWrite)?;
        let bytes = to_ion_lite(record);
        ctx.govern.add_spill_write(4 + bytes.len() as u64)?;
        let len = u32::try_from(bytes.len())
            .map_err(|_| EvalError::Resource("spill record exceeds 4GiB".into()))?;
        self.w
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.w.write_all(&bytes))
            .map_err(|e| EvalError::Resource(format!("spill write failed: {e}")))?;
        self.records += 1;
        Ok(())
    }

    /// Flushes and seals the file into a readable [`SpillRun`].
    pub(crate) fn finish(mut self) -> Result<SpillRun, EvalError> {
        self.w
            .flush()
            .map_err(|e| EvalError::Resource(format!("spill write failed: {e}")))?;
        Ok(SpillRun {
            file: self.file,
            records: self.records,
        })
    }
}

/// A sealed spill file: a sorted run (external sort) or one Grace
/// partition. Consumed by opening it for reading; dropped unopened, the
/// file is removed.
pub(crate) struct SpillRun {
    file: SpillFile,
    records: u64,
}

impl SpillRun {
    /// Records in the run.
    pub(crate) fn records(&self) -> u64 {
        self.records
    }

    /// Opens the run for reading; the temp file lives until the reader is
    /// dropped.
    pub(crate) fn open(self, _ctx: &SpillCtx<'_>) -> Result<SpillReader, EvalError> {
        let f = File::open(&self.file.path)
            .map_err(|e| EvalError::Resource(format!("spill read failed: {e}")))?;
        Ok(SpillReader {
            _file: self.file,
            r: BufReader::new(f),
            remaining: self.records,
        })
    }
}

/// Streams records back out of one spill file.
pub(crate) struct SpillReader {
    _file: SpillFile,
    r: BufReader<File>,
    remaining: u64,
}

impl SpillReader {
    /// Reads the next record ([`FaultSite::SpillRead`]), or `None` at the
    /// end of the run. Truncated or undecodable data is a typed resource
    /// error, never a panic.
    pub(crate) fn next(&mut self, ctx: &SpillCtx<'_>) -> Result<Option<Value>, EvalError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        ctx.govern.fault_at(FaultSite::SpillRead)?;
        let mut len = [0u8; 4];
        self.r
            .read_exact(&mut len)
            .map_err(|e| EvalError::Resource(format!("spill read failed: {e}")))?;
        let mut buf = vec![0u8; u32::from_le_bytes(len) as usize];
        self.r
            .read_exact(&mut buf)
            .map_err(|e| EvalError::Resource(format!("spill read failed: {e}")))?;
        let v = from_ion_lite(&buf)
            .map_err(|e| EvalError::Resource(format!("spill read failed: corrupt record: {e}")))?;
        self.remaining -= 1;
        Ok(Some(v))
    }
}

// ---------------- external merge-sort ----------------

/// How a sort/top-k payload row moves across the spill boundary. The
/// encode/decode pair must round-trip through `ion_lite`'s documented
/// value subset; `size` feeds the byte-denominated budget.
pub(crate) trait SpillCodec {
    /// The in-memory row type (a binding `Env`, or an output element).
    type Row;
    /// Serializes a row to a spillable value.
    fn encode(&self, row: &Self::Row) -> Value;
    /// Rebuilds a row from its spilled form.
    fn decode(&self, v: Value) -> Result<Self::Row, EvalError>;
    /// Estimated in-memory bytes of a row (budget unit).
    fn size(&self, row: &Self::Row) -> u64;
}

/// Frames a keyed record as `[keys-array, payload]` for one spill write —
/// the shape sorted runs and Grace partitions share.
pub(crate) fn encode_keyed_record(kv: &[Value], payload: Value) -> Value {
    Value::Array(vec![Value::Array(kv.to_vec()), payload])
}

/// Inverse of [`encode_keyed_record`].
pub(crate) fn decode_keyed_record(v: Value) -> Result<(Vec<Value>, Value), EvalError> {
    match v {
        Value::Array(mut parts) if parts.len() == 2 => {
            let payload = parts.pop().expect("len checked");
            match parts.pop().expect("len checked") {
                Value::Array(kv) => Ok((kv, payload)),
                other => Err(EvalError::Resource(format!(
                    "spill read failed: malformed sort record key {other:?}"
                ))),
            }
        }
        other => Err(EvalError::Resource(format!(
            "spill read failed: malformed sort record {other:?}"
        ))),
    }
}

/// The spillable ORDER BY buffer: rows accumulate in one gauge-tracked
/// chunk; a memory-budget refusal (with spilling enabled) stable-sorts the
/// chunk, writes it out as a sorted run, releases it from the budget, and
/// keeps going. `finish` merges the runs. Without spilling (or when the
/// budget was never hit) this is behaviorally identical to the old
/// `TrackedBuffer` + stable sort.
pub(crate) struct ExternalSorter<'s, 'k, C: SpillCodec> {
    ctx: Option<SpillCtx<'s>>,
    keys: &'k [CoreSortKey],
    codec: C,
    gauge: MatGauge<'s>,
    track_bytes: bool,
    chunk: Vec<(Vec<Value>, C::Row)>,
    chunk_bytes: u64,
    runs: Vec<SpillRun>,
}

impl<'s, 'k, C: SpillCodec> ExternalSorter<'s, 'k, C> {
    pub(crate) fn new(
        ctx: Option<SpillCtx<'s>>,
        keys: &'k [CoreSortKey],
        codec: C,
        gauge: MatGauge<'s>,
        track_bytes: bool,
    ) -> Self {
        ExternalSorter {
            ctx,
            keys,
            codec,
            gauge,
            track_bytes,
            chunk: Vec::new(),
            chunk_bytes: 0,
            runs: Vec::new(),
        }
    }

    /// Whether any run was written (the `EXPLAIN ANALYZE` spilled tag).
    pub(crate) fn spilled(&self) -> bool {
        !self.runs.is_empty()
    }

    /// Admits one row; on a memory-budget refusal with spilling enabled,
    /// spills the current chunk as a sorted run and retries once.
    pub(crate) fn push(&mut self, kv: Vec<Value>, row: C::Row) -> Result<(), EvalError> {
        let bytes = if self.track_bytes {
            kv.iter().map(approx_value_bytes).sum::<u64>() + self.codec.size(&row)
        } else {
            0
        };
        if let Err(e) = self.gauge.add_sized(1, bytes) {
            if self.ctx.is_none() || !is_memory_refusal(&e) || self.chunk.is_empty() {
                return Err(e);
            }
            self.spill_chunk()?;
            self.gauge.add_sized(1, bytes)?;
        }
        self.chunk.push((kv, row));
        self.chunk_bytes += bytes;
        Ok(())
    }

    /// Stable-sorts the in-memory chunk, writes it out as one sorted run,
    /// and releases its rows from the budget.
    fn spill_chunk(&mut self) -> Result<(), EvalError> {
        let ctx = self.ctx.as_ref().expect("spill_chunk requires a ctx");
        let keys = self.keys;
        self.chunk
            .sort_by(|(a, _), (b, _)| cmp_sort_keys(keys, a, b));
        let mut w = SpillWriter::create(ctx)?;
        for (kv, row) in &self.chunk {
            w.write(ctx, &encode_keyed_record(kv, self.codec.encode(row)))?;
        }
        self.runs.push(w.finish()?);
        self.gauge.remove(self.chunk.len() as u64, self.chunk_bytes);
        self.chunk.clear();
        self.chunk_bytes = 0;
        Ok(())
    }

    /// Produces the fully sorted payloads. In-memory case: release the
    /// gauge, stable-sort, hand over (exactly the pre-spill behavior).
    /// Spilled case: flush the tail chunk as a final run, then k-way-merge
    /// — fan-in capped, with extra passes merging the *oldest* runs first
    /// and re-inserting the result at the front, so the run-index
    /// tie-break always equals input order and the merge reproduces the
    /// stable sort bit-for-bit.
    pub(crate) fn finish(mut self) -> Result<Vec<C::Row>, EvalError> {
        if self.runs.is_empty() {
            let keys = self.keys;
            let mut chunk = std::mem::take(&mut self.chunk);
            drop(self.gauge);
            chunk.sort_by(|(a, _), (b, _)| cmp_sort_keys(keys, a, b));
            return Ok(chunk.into_iter().map(|(_, row)| row).collect());
        }
        if !self.chunk.is_empty() {
            self.spill_chunk()?;
        }
        let ctx = *self.ctx.as_ref().expect("runs exist only with a ctx");
        let keys = self.keys;
        let mut runs = std::mem::take(&mut self.runs);
        drop(self.gauge);
        let fanin = ctx.config.sort_fanin.max(2);
        while runs.len() > fanin {
            let batch: Vec<SpillRun> = runs.drain(..fanin).collect();
            let mut out = SpillWriter::create(&ctx)?;
            let mut merge = KWayMerge::new(&ctx, keys, batch)?;
            while let Some((kv, payload)) = merge.next(&ctx)? {
                out.write(&ctx, &encode_keyed_record(&kv, payload))?;
            }
            ctx.govern.add_merge_pass();
            runs.insert(0, out.finish()?);
        }
        let mut merge = KWayMerge::new(&ctx, keys, runs)?;
        let mut out = Vec::new();
        while let Some((_, payload)) = merge.next(&ctx)? {
            out.push(self.codec.decode(payload)?);
        }
        ctx.govern.add_merge_pass();
        Ok(out)
    }
}

/// Streaming k-way merge of sorted runs. Fan-in is small (the config
/// cap), so the min is found by linear scan; ties between runs resolve to
/// the lowest run index, which — runs being written in input order —
/// makes the merge stable.
struct KWayMerge<'k> {
    keys: &'k [CoreSortKey],
    readers: Vec<SpillReader>,
    heads: Vec<Option<(Vec<Value>, Value)>>,
}

impl<'k> KWayMerge<'k> {
    fn new(
        ctx: &SpillCtx<'_>,
        keys: &'k [CoreSortKey],
        runs: Vec<SpillRun>,
    ) -> Result<Self, EvalError> {
        let mut readers = Vec::with_capacity(runs.len());
        for run in runs {
            readers.push(run.open(ctx)?);
        }
        let mut m = KWayMerge {
            keys,
            readers,
            heads: Vec::new(),
        };
        for i in 0..m.readers.len() {
            let head = m.advance(ctx, i)?;
            m.heads.push(head);
        }
        Ok(m)
    }

    fn advance(
        &mut self,
        ctx: &SpillCtx<'_>,
        i: usize,
    ) -> Result<Option<(Vec<Value>, Value)>, EvalError> {
        match self.readers[i].next(ctx)? {
            None => Ok(None),
            Some(v) => Ok(Some(decode_keyed_record(v)?)),
        }
    }

    fn next(&mut self, ctx: &SpillCtx<'_>) -> Result<Option<(Vec<Value>, Value)>, EvalError> {
        let mut best: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            let Some((kv, _)) = head else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let (bkv, _) = self.heads[b].as_ref().expect("best head present");
                    if cmp_sort_keys(self.keys, kv, bkv) == Ordering::Less {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(i) = best else { return Ok(None) };
        let item = self.heads[i].take().expect("best head present");
        self.heads[i] = self.advance(ctx, i)?;
        Ok(Some(item))
    }
}

// ---------------- Grace partitioning ----------------

/// Scatters keyed records across `partitions` spill files by seeded
/// structural key hash — the Grace building block GROUP BY and hash-join
/// builds share. Each level of recursive re-partitioning uses a new seed,
/// so a partition that was one hash bucket at depth *d* spreads across
/// all files at depth *d+1*.
pub(crate) struct GracePartitioner {
    writers: Vec<SpillWriter>,
    seed: u64,
}

impl GracePartitioner {
    pub(crate) fn new(ctx: &SpillCtx<'_>, seed: u64) -> Result<Self, EvalError> {
        let n = ctx.config.partitions.max(2);
        let mut writers = Vec::with_capacity(n);
        for _ in 0..n {
            writers.push(SpillWriter::create(ctx)?);
        }
        Ok(GracePartitioner { writers, seed })
    }

    /// The partition index `key` routes to at this partitioner's seed.
    pub(crate) fn route(&self, key: &[Value]) -> usize {
        (seeded_hash(key, self.seed) as usize) % self.writers.len()
    }

    /// Writes one record into the partition its key routes to.
    pub(crate) fn write(
        &mut self,
        ctx: &SpillCtx<'_>,
        key: &[Value],
        record: &Value,
    ) -> Result<(), EvalError> {
        let idx = self.route(key);
        self.writers[idx].write(ctx, record)
    }

    /// Seals all partitions (empty ones included — a LEFT-join probe must
    /// still scan them to pad unmatched rows).
    pub(crate) fn finish(self) -> Result<Vec<SpillRun>, EvalError> {
        self.writers.into_iter().map(SpillWriter::finish).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::{FaultInjector, Limits};

    fn ctx_parts<'a>(config: &'a SpillConfig, govern: &'a ResourceGovernor) -> SpillCtx<'a> {
        SpillCtx { config, govern }
    }

    struct IdCodec;
    impl SpillCodec for IdCodec {
        type Row = Value;
        fn encode(&self, row: &Value) -> Value {
            row.clone()
        }
        fn decode(&self, v: Value) -> Result<Value, EvalError> {
            Ok(v)
        }
        fn size(&self, row: &Value) -> u64 {
            approx_value_bytes(row)
        }
    }

    fn asc_key() -> Vec<CoreSortKey> {
        vec![CoreSortKey {
            expr: sqlpp_plan::CoreExpr::Var("x".into()),
            desc: false,
            nulls_first: false,
        }]
    }

    #[test]
    fn writer_reader_roundtrip_and_cleanup() {
        let config = SpillConfig::default();
        let govern = ResourceGovernor::new(&Limits::none(), None);
        let ctx = ctx_parts(&config, &govern);
        let mut w = SpillWriter::create(&ctx).unwrap();
        let path = w.file.path.clone();
        for i in 0..10i64 {
            w.write(&ctx, &Value::Int(i)).unwrap();
        }
        let run = w.finish().unwrap();
        assert_eq!(run.records(), 10);
        assert!(path.exists());
        assert!(govern.spill_bytes_written() > 0);
        assert_eq!(govern.spill_partitions(), 1);
        let mut r = run.open(&ctx).unwrap();
        for i in 0..10i64 {
            assert_eq!(r.next(&ctx).unwrap(), Some(Value::Int(i)));
        }
        assert_eq!(r.next(&ctx).unwrap(), None);
        drop(r);
        assert!(!path.exists(), "temp file must be removed on drop");
    }

    #[test]
    fn unopened_runs_remove_their_files_too() {
        let config = SpillConfig::default();
        let govern = ResourceGovernor::new(&Limits::none(), None);
        let ctx = ctx_parts(&config, &govern);
        let w = SpillWriter::create(&ctx).unwrap();
        let path = w.file.path.clone();
        let run = w.finish().unwrap();
        assert!(path.exists());
        drop(run);
        assert!(!path.exists());
    }

    #[test]
    fn external_sort_under_tiny_budget_matches_in_memory_sort() {
        let config = SpillConfig {
            sort_fanin: 2,
            ..SpillConfig::default()
        };
        // 100 rows through a 7-row budget: many runs, multiple merge
        // passes at fan-in 2.
        let govern = ResourceGovernor::new(&Limits::none().with_memory_rows(7), None);
        let ctx = ctx_parts(&config, &govern);
        let keys = asc_key();
        let gauge = MatGauge::new(None, govern.as_memory_guard(), None);
        let mut sorter = ExternalSorter::new(Some(ctx), &keys, IdCodec, gauge, false);
        let mut expected: Vec<i64> = Vec::new();
        for i in 0..100i64 {
            let v = (i * 37) % 50; // duplicates exercise stability
            expected.push(v);
            sorter
                .push(
                    vec![Value::Int(v)],
                    Value::Array(vec![Value::Int(v), Value::Int(i)]),
                )
                .unwrap();
        }
        assert!(sorter.spilled());
        let out = sorter.finish().unwrap();
        expected.sort(); // stable
        let got_keys: Vec<i64> = out
            .iter()
            .map(|v| match v {
                Value::Array(parts) => match parts[0] {
                    Value::Int(k) => k,
                    _ => unreachable!(),
                },
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got_keys, expected);
        // Stability: among equal keys, the original sequence numbers
        // (second array slot) must be increasing.
        let mut last: Option<(i64, i64)> = None;
        for v in &out {
            let Value::Array(parts) = v else {
                unreachable!()
            };
            let (Value::Int(k), Value::Int(seq)) = (&parts[0], &parts[1]) else {
                unreachable!()
            };
            if let Some((lk, lseq)) = last {
                if lk == *k {
                    assert!(lseq < *seq, "stability violated at key {k}");
                }
            }
            last = Some((*k, *seq));
        }
        assert!(govern.merge_passes() > 1, "fan-in 2 must need extra passes");
        assert_eq!(govern.live_rows(), 0, "everything released");
        assert!(govern.peak_rows() <= 7, "peak stayed within budget");
    }

    #[test]
    fn sorter_without_spill_ctx_propagates_the_refusal() {
        let keys = asc_key();
        let govern = ResourceGovernor::new(&Limits::none().with_memory_rows(2), None);
        let gauge = MatGauge::new(None, govern.as_memory_guard(), None);
        let mut sorter = ExternalSorter::new(None, &keys, IdCodec, gauge, false);
        sorter.push(vec![Value::Int(1)], Value::Int(1)).unwrap();
        sorter.push(vec![Value::Int(2)], Value::Int(2)).unwrap();
        let err = sorter.push(vec![Value::Int(3)], Value::Int(3)).unwrap_err();
        assert!(is_memory_refusal(&err), "wrong error: {err:?}");
    }

    #[test]
    fn injected_spill_faults_surface_and_leak_nothing() {
        for site in ["spill-write", "temp-file"] {
            let config = SpillConfig::default();
            let inj = FaultInjector::new(move |s| {
                (s.name() == site).then(|| EvalError::Resource(format!("injected fault at {site}")))
            });
            let govern = ResourceGovernor::new(&Limits::none().with_memory_rows(3), Some(inj));
            let ctx = ctx_parts(&config, &govern);
            let keys = asc_key();
            let gauge = MatGauge::new(None, govern.as_memory_guard(), None);
            let mut sorter = ExternalSorter::new(Some(ctx), &keys, IdCodec, gauge, false);
            let mut failed = false;
            for i in 0..10i64 {
                if let Err(e) = sorter.push(vec![Value::Int(i)], Value::Int(i)) {
                    assert!(
                        format!("{e}").contains("injected fault"),
                        "wrong error: {e:?}"
                    );
                    failed = true;
                    break;
                }
            }
            assert!(failed, "site {site} never fired");
        }
    }

    #[test]
    fn seeded_hash_gives_independent_partitions_per_seed() {
        let keys: Vec<Vec<Value>> = (0..64i64).map(|i| vec![Value::Int(i)]).collect();
        let h0: Vec<u64> = keys.iter().map(|k| seeded_hash(k, 0) % 8).collect();
        let h1: Vec<u64> = keys.iter().map(|k| seeded_hash(k, 1) % 8).collect();
        assert_ne!(h0, h1, "different seeds must shuffle the routing");
    }

    #[test]
    fn grace_partitioner_routes_consistently_and_covers_all_records() {
        let config = SpillConfig {
            partitions: 4,
            ..SpillConfig::default()
        };
        let govern = ResourceGovernor::new(&Limits::none(), None);
        let ctx = ctx_parts(&config, &govern);
        let mut p = GracePartitioner::new(&ctx, 0).unwrap();
        for i in 0..40i64 {
            let key = vec![Value::Int(i % 10)];
            p.write(&ctx, &key, &Value::Int(i)).unwrap();
        }
        // Same key always routes to the same partition.
        assert_eq!(p.route(&[Value::Int(3)]), p.route(&[Value::Int(3)]));
        let runs = p.finish().unwrap();
        assert_eq!(runs.len(), 4);
        let total: u64 = runs.iter().map(SpillRun::records).sum();
        assert_eq!(total, 40);
    }
}
