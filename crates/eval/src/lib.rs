//! # sqlpp-eval — the SQL++ evaluator
//!
//! Interprets SQL++ Core plans over binding streams, implementing the
//! paper's semantics end to end:
//!
//! * FROM variables bind to *any* value, left-correlated (§III);
//! * the two absent values propagate per §IV-B's three MISSING-producing
//!   cases, with the SQL-compat COALESCE exception;
//! * two typing modes (§IV): permissive (type error → MISSING, "healthy"
//!   data keeps flowing) and stop-on-error;
//! * `GROUP BY … GROUP AS` materializes first-class groups (§V-B);
//! * `COLL_*` aggregates are ordinary collection functions (§V-C), with a
//!   pipelined fast path the paper explicitly licenses;
//! * PIVOT/UNPIVOT turn attribute names into data and back (§VI).
//!
//! The [`mod@reference`] module is a transparent transcription of the paper's
//! Pseudocodes 1–2, used as a differential-testing oracle.

#![warn(missing_docs)]

pub mod agg;
mod arith;
mod bytecode;
mod cast;
mod env;
mod error;
mod functions;
pub mod govern;
mod interp;
mod like;
pub mod reference;
pub mod spill;
pub mod stats;
mod stream;

pub use env::Env;
pub use error::{EvalError, TypingMode};
pub use govern::{CancelToken, FaultInjector, FaultSite, Limits, ResourceGovernor};
pub use interp::{EvalConfig, Evaluator};
pub use like::like_match;
pub use spill::SpillConfig;
pub use stats::{ExecStats, OpStats, StatsCollector};
pub use stream::DEFAULT_BATCH_SIZE;
