//! Flat postfix bytecode for scalar Core expressions.
//!
//! The tree-walking interpreter in `interp.rs` pays a recursive call and a
//! full `match` per expression node, per row. This module flattens a
//! [`CoreExpr`] tree into a `Vec<Instr>` once per plan (see
//! `Evaluator::precompile`), so the per-row cost becomes a tight loop over
//! a slice with an explicit value stack — no recursion, no re-dispatch on
//! structure that never changes between rows.
//!
//! ## ISA shape
//!
//! Instructions are postfix: operands are evaluated left-to-right onto the
//! stack and the operator pops them. Control flow (AND/OR short-circuit,
//! CASE arms, the IN missing-needle rule) uses absolute-target jumps that
//! the compiler back-patches. Two peepholes matter for the hot path:
//!
//! * `Field { var, attr }` fuses `Path(Var(v), a)` so the common `t.x`
//!   navigation borrows the bound tuple and clones only the leaf value,
//!   instead of cloning the whole tuple out of the environment first.
//! * `Between` re-emits its test expression rather than introducing a
//!   stack-dup instruction, matching the tree-walker's double evaluation
//!   exactly (same effect order, same error order).
//!
//! ## Fallback rules
//!
//! `compile` returns [`Compiled::Fallback`] — and the evaluator keeps the
//! tree-walker for that expression — when the tree contains anything
//! non-scalar: subqueries, EXISTS, or composable aggregates (their inputs
//! are whole plans, not value stacks). Oversized programs also fall back
//! so pathological nesting (e.g. deeply nested BETWEEN) cannot explode
//! code size. The VM itself lives in `interp.rs` (`run_program`) because
//! it reuses the tree-walker's value-level helpers — by construction both
//! paths produce identical values, errors, and stat side effects, which
//! the differential properties in `tests/properties.rs` pin.

use sqlpp_plan::CoreExpr;
use sqlpp_syntax::ast::{BinOp, IsTest, UnOp};
use sqlpp_value::Value;

use crate::cast::CastTarget;

/// Programs larger than this fall back to the tree-walker (`Between`
/// re-emission can square code size when nested).
const MAX_PROGRAM_LEN: usize = 4096;

/// Result of compiling one expression tree.
pub(crate) enum Compiled {
    /// Fully covered: evaluate via the VM.
    Program(Program),
    /// Contains ops the compiler does not cover; keep tree-walking.
    Fallback,
}

/// A compiled expression.
pub(crate) struct Program {
    /// The flat instruction sequence; execution runs `0..len` with jumps.
    pub(crate) instrs: Vec<Instr>,
    /// True when every name lookup is a plain variable/parameter read, so
    /// the fused scan spine may evaluate rows against a *borrowed* root
    /// binding without materializing an `Env`. `Global`/`Dynamic` lookups
    /// clear this: they inspect the full set of visible bindings.
    pub(crate) root_safe: bool,
}

/// One VM instruction. Jump targets are absolute instruction indices.
#[derive(Clone)]
pub(crate) enum Instr {
    /// Push a literal.
    Const(Value),
    /// Push a variable's value (error: unknown name).
    Var(String),
    /// Push the fused spine's borrowed root binding (emitted only by
    /// [`Program::specialize_for_root`], never by the compiler).
    RootVar,
    /// Fused `root.attr`: navigate the root binding directly — no name
    /// compare, no environment probe (specialization-only, like
    /// [`Instr::RootVar`]).
    RootField(String),
    /// Push a positional parameter.
    Param(usize),
    /// Resolve a catalog reference (tree-walker's `resolve_global`).
    Global(Vec<String>),
    /// Resolve a late-bound name (env → catalog → unique attribute).
    Dynamic(String),
    /// Fused `var.attr`: navigate without cloning the base value.
    Field {
        /// The variable holding the base value.
        var: String,
        /// The attribute to navigate to.
        attr: String,
    },
    /// Navigate `.attr` on the popped value.
    Path(String),
    /// `base[index]` on the two popped values.
    Index,
    /// Any binary operator except AND/OR (those need control flow).
    Bin(BinOp),
    /// Join the two popped operands of AND/OR under 3VL (the
    /// non-short-circuit half).
    Logic(BinOp),
    /// Peek the left operand of AND/OR: jump to `end` (keeping it as the
    /// result) when it alone decides the outcome — exactly the
    /// tree-walker's `Bool(false)`/`Bool(true)` dominance rule.
    ShortCircuit {
        /// `BinOp::And` or `BinOp::Or`.
        op: BinOp,
        /// Jump target when the left operand dominates.
        end: usize,
    },
    /// Unary operator on the popped value.
    Un(UnOp),
    /// `IS [NOT] NULL/MISSING/<type>` on the popped value.
    Is {
        /// The test.
        test: IsTest,
        /// `IS NOT`?
        negated: bool,
    },
    /// Pops `[escape,] pattern, text` and runs LIKE.
    Like {
        /// Whether an escape operand was pushed.
        has_escape: bool,
        /// NOT LIKE?
        negated: bool,
    },
    /// Pops the two comparison results of BETWEEN and ANDs them.
    BetweenFinish {
        /// NOT BETWEEN?
        negated: bool,
    },
    /// Peek: if the top of stack is MISSING jump to `0`-arg target,
    /// leaving MISSING as the result (IN's missing-needle rule).
    JumpIfMissing(usize),
    /// Pops `collection, needle` and runs the IN membership scan.
    InCollection {
        /// NOT IN?
        negated: bool,
    },
    /// CASE arm dispatch on the popped WHEN value: TRUE falls through to
    /// the THEN code; MISSING under composable compat pushes MISSING and
    /// jumps to `end`; anything else jumps to `next` (the next arm).
    CaseJump {
        /// Start of the next arm (or the ELSE code).
        next: usize,
        /// First instruction after the whole CASE.
        end: usize,
    },
    /// Unconditional jump.
    Jump(usize),
    /// Call a scalar function on the top `argc` values.
    Call {
        /// Upper-case function name.
        name: String,
        /// Argument count.
        argc: usize,
    },
    /// CAST the popped value.
    Cast {
        /// Parsed target.
        target: CastTarget,
        /// Original type name (for the error message).
        ty: String,
    },
    /// CAST to a target that failed to parse: evaluate-then-error, the
    /// tree-walker's order (both typing modes hard-error).
    BadCast(String),
    /// Build a tuple from the top `2n` values (name/value pairs).
    TupleCtor(usize),
    /// Build an array from the top `n` values (MISSING dropped).
    ArrayCtor(usize),
    /// Build a bag from the top `n` values (MISSING dropped).
    BagCtor(usize),
}

impl Program {
    /// Rewrites every lookup that can only resolve to the fused spine's
    /// root binding (`Var`/`Field` on the scan variable — root-first
    /// shadowing means the root always wins) into a direct root read,
    /// eliminating the per-row name comparison from the hot loop. Only
    /// meaningful for `root_safe` programs run with a root binding.
    pub(crate) fn specialize_for_root(&self, root: &str) -> Program {
        let instrs = self
            .instrs
            .iter()
            .map(|i| match i {
                Instr::Var(name) if name == root => Instr::RootVar,
                Instr::Field { var, attr } if var == root => Instr::RootField(attr.clone()),
                other => other.clone(),
            })
            .collect();
        Program {
            instrs,
            root_safe: self.root_safe,
        }
    }
}

/// Compiles `e`, returning `Fallback` when any part is uncovered.
pub(crate) fn compile(e: &CoreExpr) -> Compiled {
    let mut c = Compiler {
        instrs: Vec::new(),
        root_safe: true,
    };
    match c.emit(e) {
        Ok(()) => Compiled::Program(Program {
            instrs: c.instrs,
            root_safe: c.root_safe,
        }),
        Err(NotCompilable) => Compiled::Fallback,
    }
}

/// Marker error: bail out of compilation, keep the tree-walker.
struct NotCompilable;

struct Compiler {
    instrs: Vec<Instr>,
    root_safe: bool,
}

impl Compiler {
    fn push(&mut self, i: Instr) -> Result<(), NotCompilable> {
        if self.instrs.len() >= MAX_PROGRAM_LEN {
            return Err(NotCompilable);
        }
        self.instrs.push(i);
        Ok(())
    }

    /// Reserves a slot for a jump instruction patched later.
    fn hole(&mut self) -> Result<usize, NotCompilable> {
        let at = self.instrs.len();
        self.push(Instr::Jump(usize::MAX))?;
        Ok(at)
    }

    fn emit(&mut self, e: &CoreExpr) -> Result<(), NotCompilable> {
        match e {
            CoreExpr::Const(v) => self.push(Instr::Const(v.clone())),
            CoreExpr::Var(name) => self.push(Instr::Var(name.clone())),
            CoreExpr::Param(i) => self.push(Instr::Param(*i)),
            CoreExpr::Global(segments) => {
                self.root_safe = false;
                self.push(Instr::Global(segments.clone()))
            }
            CoreExpr::Dynamic(name) => {
                self.root_safe = false;
                self.push(Instr::Dynamic(name.clone()))
            }
            CoreExpr::Path(base, attr) => {
                if let CoreExpr::Var(var) = &**base {
                    self.push(Instr::Field {
                        var: var.clone(),
                        attr: attr.clone(),
                    })
                } else {
                    self.emit(base)?;
                    self.push(Instr::Path(attr.clone()))
                }
            }
            CoreExpr::Index(base, idx) => {
                self.emit(base)?;
                self.emit(idx)?;
                self.push(Instr::Index)
            }
            CoreExpr::Bin(op @ (BinOp::And | BinOp::Or), l, r) => {
                self.emit(l)?;
                let sc = self.hole()?;
                self.emit(r)?;
                self.push(Instr::Logic(*op))?;
                self.instrs[sc] = Instr::ShortCircuit {
                    op: *op,
                    end: self.instrs.len(),
                };
                Ok(())
            }
            CoreExpr::Bin(op, l, r) => {
                self.emit(l)?;
                self.emit(r)?;
                self.push(Instr::Bin(*op))
            }
            CoreExpr::Un(op, x) => {
                self.emit(x)?;
                self.push(Instr::Un(*op))
            }
            CoreExpr::Like {
                expr,
                pattern,
                escape,
                negated,
            } => {
                self.emit(expr)?;
                self.emit(pattern)?;
                if let Some(esc) = escape {
                    self.emit(esc)?;
                }
                self.push(Instr::Like {
                    has_escape: escape.is_some(),
                    negated: *negated,
                })
            }
            CoreExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // The tree-walker evaluates `expr` twice (once per bound);
                // re-emitting it preserves that order of effects exactly.
                self.emit(expr)?;
                self.emit(low)?;
                self.push(Instr::Bin(BinOp::GtEq))?;
                self.emit(expr)?;
                self.emit(high)?;
                self.push(Instr::Bin(BinOp::LtEq))?;
                self.push(Instr::BetweenFinish { negated: *negated })
            }
            CoreExpr::In {
                expr,
                collection,
                negated,
            } => {
                self.emit(expr)?;
                let j = self.hole()?;
                self.emit(collection)?;
                self.push(Instr::InCollection { negated: *negated })?;
                self.instrs[j] = Instr::JumpIfMissing(self.instrs.len());
                Ok(())
            }
            CoreExpr::Is {
                expr,
                test,
                negated,
            } => {
                self.emit(expr)?;
                self.push(Instr::Is {
                    test: test.clone(),
                    negated: *negated,
                })
            }
            CoreExpr::Case { arms, else_expr } => {
                let mut case_jumps = Vec::with_capacity(arms.len());
                let mut arm_ends = Vec::with_capacity(arms.len());
                for (when, then) in arms {
                    self.emit(when)?;
                    let cj = self.hole()?;
                    self.emit(then)?;
                    arm_ends.push(self.hole()?);
                    // `next` is known now; `end` is patched after ELSE.
                    self.instrs[cj] = Instr::CaseJump {
                        next: self.instrs.len(),
                        end: usize::MAX,
                    };
                    case_jumps.push(cj);
                }
                self.emit(else_expr)?;
                let end = self.instrs.len();
                for cj in case_jumps {
                    if let Instr::CaseJump { end: e, .. } = &mut self.instrs[cj] {
                        *e = end;
                    }
                }
                for j in arm_ends {
                    self.instrs[j] = Instr::Jump(end);
                }
                Ok(())
            }
            CoreExpr::Call { name, args } => {
                for a in args {
                    self.emit(a)?;
                }
                self.push(Instr::Call {
                    name: name.clone(),
                    argc: args.len(),
                })
            }
            CoreExpr::CollAgg { .. } | CoreExpr::Subquery { .. } | CoreExpr::Exists(_) => {
                Err(NotCompilable)
            }
            CoreExpr::TupleCtor(pairs) => {
                for (name, value) in pairs {
                    self.emit(name)?;
                    self.emit(value)?;
                }
                self.push(Instr::TupleCtor(pairs.len()))
            }
            CoreExpr::ArrayCtor(items) => {
                for v in items {
                    self.emit(v)?;
                }
                self.push(Instr::ArrayCtor(items.len()))
            }
            CoreExpr::BagCtor(items) => {
                for v in items {
                    self.emit(v)?;
                }
                self.push(Instr::BagCtor(items.len()))
            }
            CoreExpr::Cast { expr, ty } => {
                self.emit(expr)?;
                match CastTarget::parse(ty) {
                    Some(target) => self.push(Instr::Cast {
                        target,
                        ty: ty.clone(),
                    }),
                    None => self.push(Instr::BadCast(ty.clone())),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> CoreExpr {
        CoreExpr::Var(n.into())
    }

    #[test]
    fn field_peephole_fuses_var_navigation() {
        let e = CoreExpr::Path(Box::new(var("t")), "x".into());
        let Compiled::Program(p) = compile(&e) else {
            panic!("expected a program");
        };
        assert_eq!(p.instrs.len(), 1);
        assert!(matches!(&p.instrs[0], Instr::Field { var, attr } if var == "t" && attr == "x"));
        assert!(p.root_safe);
    }

    #[test]
    fn subqueries_fall_back() {
        let e = CoreExpr::CollAgg {
            func: sqlpp_plan::AggFunc::Count,
            distinct: false,
            input: Box::new(var("g")),
        };
        assert!(matches!(compile(&e), Compiled::Fallback));
    }

    #[test]
    fn globals_clear_root_safety() {
        let e = CoreExpr::Global(vec!["db".into(), "r".into()]);
        let Compiled::Program(p) = compile(&e) else {
            panic!("expected a program");
        };
        assert!(!p.root_safe);
    }

    #[test]
    fn short_circuit_targets_land_after_logic_join() {
        let e = CoreExpr::Bin(
            BinOp::And,
            Box::new(CoreExpr::Const(Value::Bool(false))),
            Box::new(var("x")),
        );
        let Compiled::Program(p) = compile(&e) else {
            panic!("expected a program");
        };
        // [Const(false), ShortCircuit{end:4}, Var(x), Logic(And)]
        assert_eq!(p.instrs.len(), 4);
        assert!(matches!(
            p.instrs[1],
            Instr::ShortCircuit {
                op: BinOp::And,
                end: 4
            }
        ));
    }
}
