//! Pull-based streams: the lazy iterator layer under the interpreter.
//!
//! The paper's Pseudocodes 1–2 define clause semantics as *iteration* over
//! binding environments; this module gives the interpreter that shape at
//! runtime. A [`BindingStream`] (or [`ValueStream`]) yields one row per
//! `next()`, so `LIMIT`, `EXISTS`, `IN`, and scalar-subquery coercion stop
//! pulling as soon as they have what they need — instead of truncating a
//! fully materialized `Vec`.
//!
//! On top of the row protocol sits a *batch* protocol: [`Stream::next_batch`]
//! appends up to `max` rows into a caller-owned buffer in one virtual call,
//! so full-consumption operators (projection, sort fill, aggregation,
//! DISTINCT) amortize dynamic dispatch, governor ticks, and stat increments
//! across ~[`DEFAULT_BATCH_SIZE`] rows instead of paying them per row. Every
//! adapter gets a row-at-a-time shim for free (the trait's default method),
//! so unported adapters keep working; hot adapters override it. Quota-aware
//! consumers (`LIMIT k`) pass a small `max`, which keeps the scan-pull
//! guarantees (B12) intact: a batched stream never pulls more than `max`
//! rows per call from its input.
//!
//! True pipeline breakers (ORDER BY, GROUP BY, window, DISTINCT, hash-join
//! and set-op build sides) still buffer, but only ever through
//! [`TrackedBuffer`]/[`MatGauge`], which feed the `peak_live_bindings`
//! gauge and per-operator high-water counters in
//! [`crate::ExecStats`] — the future spill point.
//!
//! Error convention: a stream that yields `Err` is *finished*; consumers
//! must stop pulling after the first error, and streams make no promise
//! about what further `next()` calls return. For `next_batch` the same
//! convention holds batch-wise: on `Err` the buffer holds the valid rows
//! produced *before* the error (in pull order), and the stream is finished.
//! A call that appends zero rows and returns `Ok` means exhaustion.

use std::time::Instant;

use sqlpp_plan::CoreOp;
use sqlpp_value::Value;

use crate::env::Env;
use crate::error::EvalError;
use crate::govern::ResourceGovernor;
use crate::stats::StatsCollector;

/// The default unit of pull for full-consumption operators.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Within a batch materialization loop, tick the governor once per this
/// many rows so one huge batch cannot blow past a deadline unchecked.
pub(crate) const BATCH_TICK_ROWS: usize = 64;

/// A pull stream with both a row protocol (the `Iterator` supertrait) and
/// a batch protocol. Implementors override `next_batch` when they can
/// produce rows in bulk cheaper than `max` virtual `next()` calls.
pub(crate) trait Stream<T>: Iterator<Item = Result<T, EvalError>> {
    /// Appends up to `max` rows to `out`. Appending zero rows (with `Ok`)
    /// means the stream is exhausted; fewer than `max` rows does *not*.
    /// On `Err` the rows appended before the error are valid and the
    /// stream is finished.
    fn next_batch(&mut self, out: &mut Vec<T>, max: usize) -> Result<(), EvalError> {
        for _ in 0..max {
            match self.next() {
                None => break,
                Some(Ok(v)) => out.push(v),
                Some(Err(e)) => return Err(e),
            }
        }
        Ok(())
    }
}

impl<T, S: Stream<T> + ?Sized> Stream<T> for Box<S> {
    fn next_batch(&mut self, out: &mut Vec<T>, max: usize) -> Result<(), EvalError> {
        (**self).next_batch(out, max)
    }
}

/// Adapts any plain iterator into a [`Stream`] via the row-at-a-time shim.
pub(crate) struct Rows<I>(pub(crate) I);

impl<I, T> Iterator for Rows<I>
where
    I: Iterator<Item = Result<T, EvalError>>,
{
    type Item = Result<T, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }
}

impl<I, T> Stream<T> for Rows<I> where I: Iterator<Item = Result<T, EvalError>> {}

/// A lazy stream of binding environments.
pub(crate) type BindingStream<'s> = Box<dyn Stream<Env> + 's>;

/// A lazy stream of output values (elements of a bag under construction).
pub(crate) type ValueStream<'s> = Box<dyn Stream<Value> + 's>;

/// Boxes a plain iterator as a stream (row-at-a-time batch shim).
pub(crate) fn boxed<'s, T: 's>(
    it: impl Iterator<Item = Result<T, EvalError>> + 's,
) -> Box<dyn Stream<T> + 's> {
    Box::new(Rows(it))
}

/// A stream that has already failed: yields the error once, then ends.
pub(crate) fn failed<'s, T: 's>(e: EvalError) -> Box<dyn Stream<T> + 's> {
    boxed(std::iter::once(Err(e)))
}

/// The empty stream.
pub(crate) fn empty<'s, T: 's>() -> Box<dyn Stream<T> + 's> {
    boxed(std::iter::empty())
}

/// Streams an already-materialized vector, batch-aware: a `next_batch`
/// moves a whole chunk without per-row dispatch.
pub(crate) struct VecStream<T> {
    items: std::vec::IntoIter<T>,
}

impl<T> Iterator for VecStream<T> {
    type Item = Result<T, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.items.next().map(Ok)
    }
}

impl<T> Stream<T> for VecStream<T> {
    fn next_batch(&mut self, out: &mut Vec<T>, max: usize) -> Result<(), EvalError> {
        out.extend(self.items.by_ref().take(max));
        Ok(())
    }
}

/// Streams an already-materialized vector.
pub(crate) fn from_vec<'s, T: 's>(items: Vec<T>) -> Box<dyn Stream<T> + 's> {
    Box::new(VecStream {
        items: items.into_iter(),
    })
}

/// LIMIT/OFFSET as a stream adapter: skips `offset` rows, then yields at
/// most `limit`, and — crucially — stops *pulling* from its input once the
/// quota is met. Errors pass through without consuming quota. The batch
/// path bounds every inner pull by `remaining skip + remaining quota`, so
/// batching never over-pulls a limited scan.
pub(crate) struct Limited<I> {
    inner: I,
    skip: usize,
    take: Option<usize>,
}

impl<I> Limited<I> {
    pub(crate) fn new(inner: I, offset: usize, limit: Option<usize>) -> Self {
        Limited {
            inner,
            skip: offset,
            take: limit,
        }
    }
}

impl<I, T> Iterator for Limited<I>
where
    I: Iterator<Item = Result<T, EvalError>>,
{
    type Item = Result<T, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.take == Some(0) {
                return None;
            }
            match self.inner.next()? {
                Err(e) => {
                    self.take = Some(0);
                    return Some(Err(e));
                }
                Ok(item) => {
                    if self.skip > 0 {
                        self.skip -= 1;
                        continue;
                    }
                    if let Some(t) = &mut self.take {
                        *t -= 1;
                    }
                    return Some(Ok(item));
                }
            }
        }
    }
}

impl<I, T> Stream<T> for Limited<I>
where
    I: Stream<T>,
{
    fn next_batch(&mut self, out: &mut Vec<T>, max: usize) -> Result<(), EvalError> {
        let mut produced = 0;
        while produced < max {
            if self.take == Some(0) {
                break;
            }
            let quota = self.take.unwrap_or(max - produced).min(max - produced);
            let want = quota.saturating_add(self.skip);
            let start = out.len();
            let r = self.inner.next_batch(out, want);
            let got = out.len() - start;
            let dropped = self.skip.min(got);
            if dropped > 0 {
                out.drain(start..start + dropped);
                self.skip -= dropped;
            }
            let kept = got - dropped;
            if let Some(t) = &mut self.take {
                *t -= kept.min(*t);
            }
            produced += kept;
            if let Err(e) = r {
                self.take = Some(0);
                return Err(e);
            }
            if got == 0 {
                break;
            }
        }
        Ok(())
    }
}

/// Per-operator instrumentation for a stream: counts rows and batches out
/// and wall time spent inside this operator's pulls (inclusive of
/// children, as the tree renderer expects), recording one "call" when
/// dropped. Only constructed when stats collection is on, so the ordinary
/// path carries no timer at all. A batched pull pays one timer sample per
/// batch — this is where per-row stat overhead amortizes.
pub(crate) struct Instrumented<'s, I> {
    inner: I,
    stats: &'s StatsCollector,
    key: u32,
    rows: u64,
    batches: u64,
    ns: u64,
    /// The operator is a FROM: its rows also count as `bindings_produced`.
    count_bindings: bool,
}

impl<'s, I> Instrumented<'s, I> {
    pub(crate) fn new(
        inner: I,
        stats: &'s StatsCollector,
        op: &CoreOp,
        count_bindings: bool,
    ) -> Self {
        Instrumented {
            inner,
            stats,
            key: stats.key_for(op),
            rows: 0,
            batches: 0,
            ns: 0,
            count_bindings,
        }
    }
}

impl<'s, I, T> Iterator for Instrumented<'s, I>
where
    I: Iterator<Item = Result<T, EvalError>>,
{
    type Item = Result<T, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        let t = Instant::now();
        let item = self.inner.next();
        self.ns += t.elapsed().as_nanos() as u64;
        if matches!(item, Some(Ok(_))) {
            self.rows += 1;
        }
        item
    }
}

impl<'s, I, T> Stream<T> for Instrumented<'s, I>
where
    I: Stream<T>,
{
    fn next_batch(&mut self, out: &mut Vec<T>, max: usize) -> Result<(), EvalError> {
        let start = out.len();
        let t = Instant::now();
        let r = self.inner.next_batch(out, max);
        self.ns += t.elapsed().as_nanos() as u64;
        let got = (out.len() - start) as u64;
        self.rows += got;
        if got > 0 {
            self.batches += 1;
            self.stats.add_batches_produced(1);
        }
        r
    }
}

impl<'s, I> Drop for Instrumented<'s, I> {
    fn drop(&mut self) {
        self.stats.record_op(
            self.key,
            self.rows,
            std::time::Duration::from_nanos(self.ns),
        );
        if self.batches > 0 {
            self.stats.record_op_batches(self.key, self.batches);
        }
        if self.count_bindings {
            self.stats.add_bindings_produced(self.rows);
        }
    }
}

/// A materialization gauge: every row a pipeline breaker holds live is
/// counted into the collector's `peak_live_bindings` high-water mark (and,
/// when the breaker is a plan operator, into that operator's `peak_rows`),
/// and — when a memory budget or fault hook is active — *admitted* through
/// the [`ResourceGovernor`], which can refuse. Refused rows are never
/// counted, so the live total provably stays at or below the budget.
/// Dropping the gauge releases its rows from both accounts — exactly the
/// lifecycle a spill file would have.
pub(crate) struct MatGauge<'s> {
    stats: Option<&'s StatsCollector>,
    govern: Option<&'s ResourceGovernor>,
    key: Option<u32>,
    count: u64,
    /// Estimated bytes admitted through the governor's byte account
    /// (only maintained when a governor is attached — the byte budget is
    /// a governor feature, not a stats feature).
    bytes: u64,
}

impl<'s> MatGauge<'s> {
    pub(crate) fn new(
        stats: Option<&'s StatsCollector>,
        govern: Option<&'s ResourceGovernor>,
        op: Option<&CoreOp>,
    ) -> Self {
        let key = match (stats, op) {
            (Some(st), Some(op)) => Some(st.key_for(op)),
            _ => None,
        };
        MatGauge {
            stats,
            govern,
            key,
            count: 0,
            bytes: 0,
        }
    }

    /// Admits and counts `n` more rows as live in this buffer. On refusal
    /// (budget exceeded or injected fault) nothing is counted and the
    /// caller must not buffer the rows.
    pub(crate) fn add(&mut self, n: u64) -> Result<(), EvalError> {
        self.add_sized(n, 0)
    }

    /// Like [`MatGauge::add`], also admitting `bytes` estimated bytes
    /// through the governor's byte-denominated budget. Refusal on either
    /// account leaves both accounts untouched.
    pub(crate) fn add_sized(&mut self, n: u64, bytes: u64) -> Result<(), EvalError> {
        if let Some(g) = self.govern {
            g.admit(n)?;
            if bytes > 0 {
                if let Err(e) = g.admit_bytes(bytes) {
                    g.release(n);
                    return Err(e);
                }
            }
            self.count += n;
            self.bytes += bytes;
        }
        if let Some(st) = self.stats {
            if self.govern.is_none() {
                self.count += n;
            }
            st.buffer_grow(n);
            if let Some(k) = self.key {
                st.record_peak_rows(k, self.count);
            }
        }
        Ok(())
    }

    /// Releases `n` rows (and `bytes` estimated bytes) from the live
    /// accounts *before* the gauge is dropped — the spill hook: a breaker
    /// that writes part of its working set to disk stops holding those
    /// rows in memory, so the budget sees them leave immediately. The
    /// recorded peaks are unaffected.
    pub(crate) fn remove(&mut self, n: u64, bytes: u64) {
        let n = n.min(self.count);
        let bytes = bytes.min(self.bytes);
        if let Some(st) = self.stats {
            st.buffer_shrink(n);
        }
        if let Some(g) = self.govern {
            g.release(n);
            g.release_bytes(bytes);
        }
        self.count -= n;
        self.bytes -= bytes;
    }
}

impl<'s> Drop for MatGauge<'s> {
    fn drop(&mut self) {
        if let Some(st) = self.stats {
            st.buffer_shrink(self.count);
        }
        if let Some(g) = self.govern {
            g.release(self.count);
            g.release_bytes(self.bytes);
        }
    }
}

/// The one buffer type pipeline breakers materialize through: a `Vec`
/// whose occupancy is tracked (and budget-governed) by a [`MatGauge`].
pub(crate) struct TrackedBuffer<'s, T> {
    items: Vec<T>,
    gauge: MatGauge<'s>,
}

impl<'s, T> TrackedBuffer<'s, T> {
    pub(crate) fn new(
        stats: Option<&'s StatsCollector>,
        govern: Option<&'s ResourceGovernor>,
        op: Option<&CoreOp>,
    ) -> Self {
        TrackedBuffer {
            items: Vec::new(),
            gauge: MatGauge::new(stats, govern, op),
        }
    }

    /// Admits the row through the gauge *before* storing it; a refused
    /// row is dropped and the buffer is unchanged.
    pub(crate) fn push(&mut self, item: T) -> Result<(), EvalError> {
        self.gauge.add(1)?;
        self.items.push(item);
        Ok(())
    }

    /// Releases the rows from the live gauge (their peak is already
    /// recorded) and hands the vector to the caller.
    pub(crate) fn into_vec(self) -> Vec<T> {
        let TrackedBuffer { items, gauge } = self;
        drop(gauge);
        items
    }
}

/// Deadline/cancellation enforcement as a stream adapter: every `next()`
/// ticks the governor (a counter bump, with a real clock/token inspection
/// only at the amortized interval) before pulling the inner stream. Only
/// constructed when a deadline or token is attached, so ungoverned pulls
/// carry no overhead. Fused: after the inner stream ends or errors, no
/// further governor errors are manufactured.
///
/// A batched pull ticks once up front and then once per
/// [`BATCH_TICK_ROWS`] rows the batch produced, so a full batch can never
/// advance the pipeline by more than 64 rows between deadline/cancel
/// observations — while the *real* clock/token inspection still amortizes
/// to roughly once per 4096 rows.
pub(crate) struct Governed<'s, I> {
    inner: I,
    govern: &'s ResourceGovernor,
    done: bool,
}

impl<'s, I> Governed<'s, I> {
    pub(crate) fn new(inner: I, govern: &'s ResourceGovernor) -> Self {
        Governed {
            inner,
            govern,
            done: false,
        }
    }
}

impl<'s, I, T> Iterator for Governed<'s, I>
where
    I: Iterator<Item = Result<T, EvalError>>,
{
    type Item = Result<T, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Err(e) = self.govern.tick() {
            self.done = true;
            return Some(Err(e));
        }
        let item = self.inner.next();
        match &item {
            None | Some(Err(_)) => self.done = true,
            Some(Ok(_)) => {}
        }
        item
    }
}

impl<'s, I, T> Stream<T> for Governed<'s, I>
where
    I: Stream<T>,
{
    fn next_batch(&mut self, out: &mut Vec<T>, max: usize) -> Result<(), EvalError> {
        if self.done {
            return Ok(());
        }
        if let Err(e) = self.govern.tick() {
            self.done = true;
            return Err(e);
        }
        let start = out.len();
        let r = self.inner.next_batch(out, max);
        let got = out.len() - start;
        if r.is_err() || got == 0 {
            self.done = true;
        }
        r?;
        if let Err(e) = self.govern.tick_rows(got as u64) {
            self.done = true;
            return Err(e);
        }
        Ok(())
    }
}
